//! CXL.cache protocol model for the PAX reproduction.
//!
//! PAX (§4) interposes on the coherence messages a CXL 2.0 device receives
//! as the home agent of the vPM range. This crate models that protocol
//! surface:
//!
//! * [`message`] — the message vocabulary, named after CXL 2.0 §3.2
//!   opcodes: host→device requests (`RdShared`, `RdOwn`, `CleanEvict`,
//!   `DirtyEvict`), device→host snoops (`SnpData`, `SnpInv`), and their
//!   responses.
//! * [`channel`] — FIFO channels with latency/traffic accounting, modelling
//!   the shared-memory queues of the paper's software prototype (§4) as
//!   well as a real link's request/response channels.
//! * [`eci`] — a simplified rendition of Enzian's lower-level,
//!   ThunderX-coupled coherence messages.
//! * [`adapter`] — the paper's "adapter layer": translates platform-native
//!   messages to CXL semantics so the device logic is portable
//!   ([`CxlNative`], [`EnzianAdapter`]), with a [`Capability`] lattice for
//!   the §6 CXL.mem < CXL.cache < Enzian visibility comparison.
//! * [`link`] — PCIe 5.0 / PM bandwidth model for the §5.1 bottleneck
//!   analysis.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adapter;
pub mod channel;
pub mod eci;
pub mod link;
pub mod message;

pub use adapter::{Capability, CoherenceAdapter, CxlNative, EnzianAdapter};
pub use channel::{Channel, ChannelStats, Transport};
pub use eci::EciMsg;
pub use link::{BottleneckReport, LinkModel, Resource};
pub use message::{D2HReq, D2HResp, H2DReq, H2DResp};
