//! CXL.cache message vocabulary.
//!
//! Names follow CXL 2.0 §3.2: the host CPU's cache home agent forwards
//! requests for device-homed (vPM) lines on the H2D channels; the device
//! initiates back-snoops on the D2H channels. Only the opcodes PAX consumes
//! are modelled — this is the "information content" of the protocol, not a
//! flit-accurate encoding.

use pax_pm::{CacheLine, LineAddr};

/// Host→device request: the CPU needs a device-homed line.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum H2DReq {
    /// Read miss: the CPU wants `addr` in shared state.
    RdShared {
        /// The vPM line being read.
        addr: LineAddr,
    },
    /// Read-for-ownership: the CPU is about to modify `addr`. The device
    /// learns a new value for this line will exist — the undo-log hook.
    RdOwn {
        /// The vPM line being modified.
        addr: LineAddr,
    },
    /// The CPU drops a clean copy of `addr`.
    CleanEvict {
        /// The line being dropped.
        addr: LineAddr,
    },
    /// The CPU writes back the modified contents of `addr`.
    DirtyEvict {
        /// The line being written back.
        addr: LineAddr,
        /// Its modified contents.
        data: CacheLine,
    },
}

impl H2DReq {
    /// The line this request concerns.
    pub fn addr(&self) -> LineAddr {
        match self {
            H2DReq::RdShared { addr }
            | H2DReq::RdOwn { addr }
            | H2DReq::CleanEvict { addr }
            | H2DReq::DirtyEvict { addr, .. } => *addr,
        }
    }

    /// Whether this request carries a 64-byte data payload.
    pub fn carries_data(&self) -> bool {
        matches!(self, H2DReq::DirtyEvict { .. })
    }
}

/// Device→host response to an [`H2DReq`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum D2HResp {
    /// Grant + data for `RdShared`/`RdOwn` (CXL "GO" with data).
    GoData {
        /// The requested line.
        addr: LineAddr,
        /// Current contents as known to the device.
        data: CacheLine,
    },
    /// Grant without data (evict acknowledgements).
    Go {
        /// The acknowledged line.
        addr: LineAddr,
    },
}

/// Device→host snoop: the device (home agent) needs host-cache state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum D2HReq {
    /// Downgrade `addr` to shared and forward its current value —
    /// issued for every logged line at `persist()` (§3.3).
    SnpData {
        /// The line to downgrade.
        addr: LineAddr,
    },
    /// Invalidate `addr` in all host caches.
    SnpInv {
        /// The line to invalidate.
        addr: LineAddr,
    },
}

impl D2HReq {
    /// The line this snoop concerns.
    pub fn addr(&self) -> LineAddr {
        match self {
            D2HReq::SnpData { addr } | D2HReq::SnpInv { addr } => *addr,
        }
    }
}

/// Host→device snoop response.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum H2DResp {
    /// Snoop response; `data` is present when a host cache held the line
    /// (for `SnpData`) or held it dirty (for `SnpInv`).
    SnpResp {
        /// The snooped line.
        addr: LineAddr,
        /// Forwarded contents, if any.
        data: Option<CacheLine>,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addr_accessors() {
        let a = LineAddr(5);
        assert_eq!(H2DReq::RdShared { addr: a }.addr(), a);
        assert_eq!(H2DReq::RdOwn { addr: a }.addr(), a);
        assert_eq!(H2DReq::DirtyEvict { addr: a, data: CacheLine::zeroed() }.addr(), a);
        assert_eq!(D2HReq::SnpData { addr: a }.addr(), a);
        assert_eq!(D2HReq::SnpInv { addr: a }.addr(), a);
    }

    #[test]
    fn only_dirty_evict_carries_data() {
        let a = LineAddr(1);
        assert!(!H2DReq::RdShared { addr: a }.carries_data());
        assert!(!H2DReq::RdOwn { addr: a }.carries_data());
        assert!(!H2DReq::CleanEvict { addr: a }.carries_data());
        assert!(H2DReq::DirtyEvict { addr: a, data: CacheLine::zeroed() }.carries_data());
    }
}
