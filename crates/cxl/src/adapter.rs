//! Platform adapters — the paper's portability layer.
//!
//! §4: "our plan is to implement an 'adapter' layer at the FPGA that
//! filters and adapts the ThunderX's coherence messages to match the CXL
//! specification so our implementation will be immediately portable to
//! commodity machines when CXL devices arrive." [`CoherenceAdapter`] is
//! that layer's contract; [`CxlNative`] is the identity adapter a real
//! CXL device would use and [`EnzianAdapter`] filters/translates the
//! [`EciMsg`] stream.
//!
//! §6 additionally ranks platforms by how much coherence visibility they
//! give the device — "CXL.mem can support basic functionality, but it does
//! not have as much visibility into coherence as CXL.cache, which has less
//! visibility than Enzian". [`Capability`] encodes that lattice.

use pax_pm::Platform;

use crate::eci::EciMsg;
use crate::message::H2DReq;

/// How much of the host's coherence traffic a platform exposes (§6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Capability {
    /// CXL.mem: the device is a plain memory target. It sees reads and
    /// writes that reach it but no ownership traffic — it cannot tell
    /// *when* a line is about to be modified, so asynchronous undo logging
    /// before write back is impossible; only store-through designs work.
    MemOnly,
    /// CXL.cache: the device is the home agent; it sees RdShared/RdOwn
    /// and evictions — everything PAX needs.
    CacheHome,
    /// Enzian/ECI: raw bus-level visibility, a superset of CXL.cache
    /// (including microarchitectural noise the adapter must filter).
    FullBus,
}

impl Capability {
    /// Whether this capability level suffices for PAX's asynchronous undo
    /// logging (the device must see ownership requests before data exists).
    pub fn supports_undo_logging(self) -> bool {
        self >= Capability::CacheHome
    }
}

/// Translates platform-native coherence events into CXL.cache requests.
///
/// Implementations are cheap, stateless filters; the device logic consumes
/// only the translated [`H2DReq`] stream and is therefore portable across
/// platforms (the paper's key deployment argument for CXL).
pub trait CoherenceAdapter {
    /// The platform this adapter models (selects timing).
    fn platform(&self) -> Platform;

    /// The coherence visibility of this platform.
    fn capability(&self) -> Capability;

    /// Translates one native message; `None` means "filtered out" (no CXL
    /// equivalent, or below this platform's visibility).
    fn translate(&self, native: EciMsg) -> Option<H2DReq>;

    /// One-way message latency between host and device on this platform,
    /// given the profile's interposition costs (half a round trip).
    fn one_way_latency_ns(&self, profile: &pax_pm::LatencyProfile) -> u64 {
        profile.interposition_ns(self.platform()) / 2
    }
}

/// Identity adapter for a native CXL 2.0 device: the host home agent
/// already speaks CXL.cache, so translation only renames events.
#[derive(Debug, Clone, Copy, Default)]
pub struct CxlNative;

impl CoherenceAdapter for CxlNative {
    fn platform(&self) -> Platform {
        Platform::Cxl
    }

    fn capability(&self) -> Capability {
        Capability::CacheHome
    }

    fn translate(&self, native: EciMsg) -> Option<H2DReq> {
        match native {
            EciMsg::LoadMiss { addr } => Some(H2DReq::RdShared { addr }),
            EciMsg::StoreMiss { addr } | EciMsg::UpgradeReq { addr } => {
                Some(H2DReq::RdOwn { addr })
            }
            EciMsg::VictimClean { addr } => Some(H2DReq::CleanEvict { addr }),
            EciMsg::VictimDirty { addr, data } => Some(H2DReq::DirtyEvict { addr, data }),
            // A CXL home agent never sees these at all.
            EciMsg::PrefetchProbe { .. } | EciMsg::SpeculativeRead { .. } | EciMsg::DvmOp => None,
        }
    }
}

/// The Enzian adapter: filters ThunderX bus noise and translates the rest
/// to CXL semantics (§4). Functionally identical output to [`CxlNative`],
/// but at [`Platform::Enzian`] timing and [`Capability::FullBus`]
/// visibility, and it counts how much noise it filtered.
#[derive(Debug, Clone, Copy, Default)]
pub struct EnzianAdapter {
    filtered: u64,
    translated: u64,
}

impl EnzianAdapter {
    /// A fresh adapter with zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Messages dropped as microarchitectural noise so far.
    pub fn filtered(&self) -> u64 {
        self.filtered
    }

    /// Messages successfully translated so far.
    pub fn translated(&self) -> u64 {
        self.translated
    }

    /// Translates while updating the noise counters (the trait method is
    /// `&self`; stats-keeping callers use this).
    pub fn translate_counted(&mut self, native: EciMsg) -> Option<H2DReq> {
        let out = self.translate(native);
        match out {
            Some(_) => self.translated += 1,
            None => self.filtered += 1,
        }
        out
    }
}

impl CoherenceAdapter for EnzianAdapter {
    fn platform(&self) -> Platform {
        Platform::Enzian
    }

    fn capability(&self) -> Capability {
        Capability::FullBus
    }

    fn translate(&self, native: EciMsg) -> Option<H2DReq> {
        // Same semantic mapping as native CXL; Enzian's extra visibility
        // is noise from PAX's perspective and is filtered here.
        CxlNative.translate(native)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pax_pm::{CacheLine, LatencyProfile, LineAddr};

    #[test]
    fn capability_lattice_matches_section_6() {
        assert!(Capability::MemOnly < Capability::CacheHome);
        assert!(Capability::CacheHome < Capability::FullBus);
        assert!(!Capability::MemOnly.supports_undo_logging());
        assert!(Capability::CacheHome.supports_undo_logging());
        assert!(Capability::FullBus.supports_undo_logging());
    }

    #[test]
    fn cxl_native_translation_table() {
        let a = LineAddr(4);
        let c = CxlNative;
        assert_eq!(c.translate(EciMsg::LoadMiss { addr: a }), Some(H2DReq::RdShared { addr: a }));
        assert_eq!(c.translate(EciMsg::StoreMiss { addr: a }), Some(H2DReq::RdOwn { addr: a }));
        assert_eq!(c.translate(EciMsg::UpgradeReq { addr: a }), Some(H2DReq::RdOwn { addr: a }));
        assert_eq!(
            c.translate(EciMsg::VictimClean { addr: a }),
            Some(H2DReq::CleanEvict { addr: a })
        );
        let data = CacheLine::filled(1);
        assert_eq!(
            c.translate(EciMsg::VictimDirty { addr: a, data: data.clone() }),
            Some(H2DReq::DirtyEvict { addr: a, data })
        );
    }

    #[test]
    fn noise_is_filtered_on_both_platforms() {
        let a = LineAddr(4);
        for adapter in [&CxlNative as &dyn CoherenceAdapter, &EnzianAdapter::new()] {
            assert_eq!(adapter.translate(EciMsg::PrefetchProbe { addr: a }), None);
            assert_eq!(adapter.translate(EciMsg::SpeculativeRead { addr: a }), None);
            assert_eq!(adapter.translate(EciMsg::DvmOp), None);
        }
    }

    #[test]
    fn enzian_counts_noise() {
        let mut e = EnzianAdapter::new();
        e.translate_counted(EciMsg::LoadMiss { addr: LineAddr(0) });
        e.translate_counted(EciMsg::PrefetchProbe { addr: LineAddr(0) });
        e.translate_counted(EciMsg::DvmOp);
        assert_eq!(e.translated(), 1);
        assert_eq!(e.filtered(), 2);
    }

    #[test]
    fn adapters_differ_only_in_timing_and_capability() {
        let p = LatencyProfile::c6420();
        let cxl = CxlNative;
        let enz = EnzianAdapter::new();
        assert!(cxl.one_way_latency_ns(&p) < enz.one_way_latency_ns(&p));
        assert_eq!(cxl.capability(), Capability::CacheHome);
        assert_eq!(enz.capability(), Capability::FullBus);
        // Semantics identical:
        let m = EciMsg::StoreMiss { addr: LineAddr(9) };
        assert_eq!(cxl.translate(m.clone()), enz.translate(m));
    }
}
