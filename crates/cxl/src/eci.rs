//! A simplified Enzian ECI message set.
//!
//! Enzian exposes the ThunderX-1's native cache-coherence bus to the FPGA
//! (§4): "the coherence messages observed by the FPGA are at a lower level
//! than what a CXL-enabled device would receive, and they are tightly
//! coupled to the ThunderX's microarchitecture". This module models that
//! lower level with a representative message set: the CXL-equivalent
//! events are present under microarchitectural names, interleaved with
//! traffic a CXL device would never see (prefetches, speculative probes,
//! DVM/TLB maintenance). The [`EnzianAdapter`](crate::EnzianAdapter)
//! filters and translates this stream to CXL semantics.

use pax_pm::{CacheLine, LineAddr};

/// A coherence-bus message as the Enzian FPGA observes it.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum EciMsg {
    /// A core's load missed; the line is requested in shared state.
    LoadMiss {
        /// The requested line.
        addr: LineAddr,
    },
    /// A core requests exclusive ownership to store.
    StoreMiss {
        /// The line to be modified.
        addr: LineAddr,
    },
    /// A shared line is upgraded to exclusive in place.
    UpgradeReq {
        /// The line being upgraded.
        addr: LineAddr,
    },
    /// An L2 victim with unmodified contents.
    VictimClean {
        /// The line being dropped.
        addr: LineAddr,
    },
    /// An L2 victim with modified contents.
    VictimDirty {
        /// The line being written back.
        addr: LineAddr,
        /// Its contents.
        data: CacheLine,
    },
    /// Hardware prefetch probe — microarchitectural noise with no CXL
    /// equivalent; must not trigger undo logging.
    PrefetchProbe {
        /// The probed line.
        addr: LineAddr,
    },
    /// Speculative read issued and later squashed — also noise.
    SpeculativeRead {
        /// The speculated line.
        addr: LineAddr,
    },
    /// TLB/DVM maintenance broadcast; not a data-line event at all.
    DvmOp,
}

impl EciMsg {
    /// The line this message concerns, if it concerns one.
    pub fn addr(&self) -> Option<LineAddr> {
        match self {
            EciMsg::LoadMiss { addr }
            | EciMsg::StoreMiss { addr }
            | EciMsg::UpgradeReq { addr }
            | EciMsg::VictimClean { addr }
            | EciMsg::VictimDirty { addr, .. }
            | EciMsg::PrefetchProbe { addr }
            | EciMsg::SpeculativeRead { addr } => Some(*addr),
            EciMsg::DvmOp => None,
        }
    }

    /// Whether a CXL.cache device would observe an equivalent event.
    pub fn has_cxl_equivalent(&self) -> bool {
        matches!(
            self,
            EciMsg::LoadMiss { .. }
                | EciMsg::StoreMiss { .. }
                | EciMsg::UpgradeReq { .. }
                | EciMsg::VictimClean { .. }
                | EciMsg::VictimDirty { .. }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noise_messages_have_no_cxl_equivalent() {
        assert!(!EciMsg::PrefetchProbe { addr: LineAddr(0) }.has_cxl_equivalent());
        assert!(!EciMsg::SpeculativeRead { addr: LineAddr(0) }.has_cxl_equivalent());
        assert!(!EciMsg::DvmOp.has_cxl_equivalent());
        assert!(EciMsg::StoreMiss { addr: LineAddr(0) }.has_cxl_equivalent());
    }

    #[test]
    fn dvm_has_no_addr() {
        assert_eq!(EciMsg::DvmOp.addr(), None);
        assert_eq!(EciMsg::LoadMiss { addr: LineAddr(3) }.addr(), Some(LineAddr(3)));
    }
}
