//! Criterion micro-benchmarks for the undo log: append (the per-RdOwn
//! device cost) and pump/flush (the background drain).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use pax_device::{UndoEntry, UndoLog};
use pax_pm::{CacheLine, CrashClock, LineAddr, PmPool, PoolConfig};

fn pool() -> PmPool {
    PmPool::create(PoolConfig::small().with_log_bytes(32 << 20)).expect("pool")
}

fn entry(i: u64) -> UndoEntry {
    UndoEntry::single(1, LineAddr(i), CacheLine::filled(i as u8))
}

fn bench_append(c: &mut Criterion) {
    let mut g = c.benchmark_group("undo_log");
    g.throughput(Throughput::Elements(256));
    g.bench_function("append_256", |b| {
        let p = pool();
        b.iter_batched(
            || UndoLog::new(&p),
            |mut log| {
                for i in 0..256 {
                    log.append(entry(i)).expect("append");
                }
                log
            },
            BatchSize::SmallInput,
        );
    });
    g.finish();
}

fn bench_flush(c: &mut Criterion) {
    let mut g = c.benchmark_group("undo_log");
    g.throughput(Throughput::Elements(256));
    g.bench_function("flush_256_entries", |b| {
        b.iter_batched(
            || {
                let p = pool();
                let mut log = UndoLog::new(&p);
                for i in 0..256 {
                    log.append(entry(i)).expect("append");
                }
                (p, log)
            },
            |(mut p, mut log)| {
                log.flush(&mut p, &CrashClock::new()).expect("flush");
                (p, log)
            },
            BatchSize::SmallInput,
        );
    });
    g.finish();
}

fn bench_scan(c: &mut Criterion) {
    let mut g = c.benchmark_group("undo_log");
    let mut p = pool();
    let mut log = UndoLog::new(&p);
    for i in 0..1024 {
        log.append(entry(i)).expect("append");
    }
    log.flush(&mut p, &CrashClock::new()).expect("flush");
    g.throughput(Throughput::Elements(1024));
    g.bench_function("scan_1k_entries", |b| {
        b.iter(|| {
            let entries = UndoLog::scan(&mut p).expect("scan");
            assert_eq!(entries.len(), 1024);
            entries.len()
        });
    });
    g.finish();
}

criterion_group!(benches, bench_append, bench_flush, bench_scan);
criterion_main!(benches);
