//! Criterion benchmark: recovery time versus undo-log length (§3.4).
//!
//! Recovery scans the log region and rolls back entries newer than the
//! committed epoch; its cost must scale with the log, not the pool.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion, Throughput};
use pax_device::{recover, UndoEntry, UndoLog};
use pax_pm::{CacheLine, CrashClock, LineAddr, PmPool, PoolConfig};

/// Builds a pool that looks like it crashed mid-epoch with `entries`
/// unpersisted undo entries.
fn crashed_pool(entries: u64) -> PmPool {
    let mut pool =
        PmPool::create(PoolConfig::small().with_log_bytes(32 << 20).with_data_bytes(16 << 20))
            .expect("pool");
    let clock = CrashClock::new();
    let mut log = UndoLog::new(&pool);
    for i in 0..entries {
        // Pool's committed epoch is 0 → all entries roll back.
        log.append(UndoEntry::single(1, LineAddr(i), CacheLine::filled(i as u8))).expect("append");
    }
    log.flush(&mut pool, &clock).expect("flush");
    pool
}

fn bench_recovery(c: &mut Criterion) {
    let mut g = c.benchmark_group("recovery");
    for entries in [64u64, 512, 4096] {
        g.throughput(Throughput::Elements(entries));
        g.bench_with_input(BenchmarkId::new("rollback", entries), &entries, |b, &n| {
            b.iter_batched(
                || crashed_pool(n),
                |mut pool| {
                    let r = recover(&mut pool).expect("recover");
                    assert_eq!(r.rolled_back, n as usize);
                    pool
                },
                BatchSize::SmallInput,
            );
        });
    }
    g.finish();
}

fn bench_clean_open(c: &mut Criterion) {
    let mut g = c.benchmark_group("recovery");
    g.bench_function("clean_pool_noop", |b| {
        b.iter_batched(
            || PmPool::create(PoolConfig::small()).expect("pool"),
            |mut pool| {
                let r = recover(&mut pool).expect("recover");
                assert_eq!(r.rolled_back, 0);
                pool
            },
            BatchSize::SmallInput,
        );
    });
    g.finish();
}

criterion_group!(benches, bench_recovery, bench_clean_open);
criterion_main!(benches);
