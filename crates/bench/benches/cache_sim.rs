//! Criterion benchmark: raw simulator overhead — coherent-cache accesses
//! and miss-rate hierarchy accesses per second. These bound how large a
//! workload the functional simulation can drive.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use pax_cache::{CacheConfig, CoherentCache, Hierarchy, HierarchyConfig, MemoryHome};
use pax_pm::{CacheLine, DramMedia, LineAddr};

fn bench_coherent_cache(c: &mut Criterion) {
    let mut g = c.benchmark_group("cache_sim");
    g.throughput(Throughput::Elements(1));

    let mut home = MemoryHome::new(DramMedia::new(8 << 20));
    let mut cache = CoherentCache::new(CacheConfig::tiny(256 << 10, 8));
    let mut i = 0u64;
    g.bench_function("read_mixed", |b| {
        b.iter(|| {
            i = (i + 61) % (4 << 10);
            cache.read(LineAddr(i), &mut home).expect("read")
        });
    });

    let mut j = 0u64;
    g.bench_function("write_mixed", |b| {
        b.iter(|| {
            j = (j + 61) % (4 << 10);
            cache.write(LineAddr(j), CacheLine::filled(j as u8), &mut home).expect("write");
        });
    });
    g.finish();
}

fn bench_hierarchy(c: &mut Criterion) {
    let mut g = c.benchmark_group("cache_sim");
    g.throughput(Throughput::Elements(1));
    let mut h = Hierarchy::new(HierarchyConfig::c6420_scaled());
    let mut i = 0u64;
    g.bench_function("hierarchy_access", |b| {
        b.iter(|| {
            i = (i + 61) % (64 << 10);
            h.access(LineAddr(i))
        });
    });
    g.finish();
}

criterion_group!(benches, bench_coherent_cache, bench_hierarchy);
criterion_main!(benches);
