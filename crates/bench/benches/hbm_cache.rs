//! Criterion micro-benchmarks for the device HBM buffer: lookup and
//! insert-with-policy (the per-message device work of §3.3).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use pax_device::{EvictionPolicy, HbmCache, HbmConfig, HbmLine};
use pax_pm::{CacheLine, LineAddr};

fn line(i: u64, dirty: bool) -> HbmLine {
    HbmLine { data: CacheLine::filled(i as u8), dirty, log_offset: dirty.then_some(i) }
}

fn config(policy: EvictionPolicy) -> HbmConfig {
    HbmConfig { capacity_bytes: 1 << 20, ways: 8, policy }
}

fn bench_lookup(c: &mut Criterion) {
    let mut g = c.benchmark_group("hbm");
    let h = HbmCache::new(config(EvictionPolicy::PreferDurable));
    for i in 0..8192u64 {
        h.insert(LineAddr(i), line(i, false), 0);
    }
    g.throughput(Throughput::Elements(1));
    g.bench_function("lookup_hit", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 97) % 8192;
            h.lookup(LineAddr(i)).is_some()
        });
    });
    g.finish();
}

fn bench_insert(c: &mut Criterion) {
    let mut g = c.benchmark_group("hbm");
    g.throughput(Throughput::Elements(4096));
    for (name, policy) in [
        ("insert_lru", EvictionPolicy::Lru),
        ("insert_prefer_durable", EvictionPolicy::PreferDurable),
    ] {
        g.bench_function(name, |b| {
            b.iter_batched(
                || HbmCache::new(config(policy)),
                |h| {
                    // Insert 4× capacity worth of dirty lines: every
                    // insert past capacity exercises victim selection.
                    for i in 0..4096u64 {
                        h.insert(LineAddr(i), line(i, true), i / 2);
                    }
                    h
                },
                BatchSize::SmallInput,
            );
        });
    }
    g.finish();
}

fn bench_take_dirty(c: &mut Criterion) {
    let mut g = c.benchmark_group("hbm");
    g.throughput(Throughput::Elements(1024));
    g.bench_function("take_dirty_1k", |b| {
        b.iter_batched(
            || {
                let h = HbmCache::new(config(EvictionPolicy::PreferDurable));
                for i in 0..1024u64 {
                    h.insert(LineAddr(i), line(i, true), 0);
                }
                h
            },
            |h| {
                let dirty = h.take_dirty();
                assert_eq!(dirty.len(), 1024);
                h
            },
            BatchSize::SmallInput,
        );
    });
    g.finish();
}

criterion_group!(benches, bench_lookup, bench_insert, bench_take_dirty);
criterion_main!(benches);
