//! Criterion benchmark: the same `PHashMap` code on every memory space —
//! the black-box-reuse comparison in microcosm. Simulator overhead
//! dominates absolute numbers; the interesting output is the *relative*
//! cost of each crash-consistency mechanism under identical structure
//! code.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use libpax::{Heap, MemSpace, PHashMap, PaxConfig, PaxPool, VolatileSpace};
use pax_baselines::{DirectPmSpace, WalSpace};
use pax_pm::PoolConfig;

const N: u64 = 512;

fn insert_n<S: MemSpace>(space: S) {
    let map: PHashMap<u64, u64, S, Heap<S>> =
        PHashMap::attach(Heap::attach(space).expect("heap")).expect("map");
    for k in 0..N {
        map.insert(k, k).expect("insert");
    }
    assert_eq!(map.len().expect("len"), N);
}

fn bench_inserts(c: &mut Criterion) {
    let mut g = c.benchmark_group("phashmap_insert_512");
    g.throughput(Throughput::Elements(N));

    g.bench_function("volatile", |b| {
        b.iter_batched(|| VolatileSpace::new(4 << 20), insert_n, BatchSize::SmallInput);
    });

    g.bench_function("pm_direct", |b| {
        b.iter_batched(|| DirectPmSpace::new(4 << 20), insert_n, BatchSize::SmallInput);
    });

    g.bench_function("pmdk_wal", |b| {
        b.iter_batched(
            || {
                WalSpace::create(
                    PoolConfig::small().with_data_bytes(4 << 20).with_log_bytes(32 << 20),
                )
                .expect("wal")
            },
            insert_n,
            BatchSize::SmallInput,
        );
    });

    g.bench_function("pax_vpm", |b| {
        b.iter_batched(
            || {
                PaxPool::create(PaxConfig::default().with_pool(
                    PoolConfig::small().with_data_bytes(4 << 20).with_log_bytes(32 << 20),
                ))
                .expect("pool")
                .vpm()
            },
            insert_n,
            BatchSize::SmallInput,
        );
    });

    g.finish();
}

fn bench_gets(c: &mut Criterion) {
    let mut g = c.benchmark_group("phashmap_get");
    g.throughput(Throughput::Elements(1));

    let space = VolatileSpace::new(4 << 20);
    let map: PHashMap<u64, u64, _, Heap<_>> =
        PHashMap::attach(Heap::attach(space).expect("heap")).expect("map");
    for k in 0..N {
        map.insert(k, k).expect("insert");
    }
    let mut k = 0;
    g.bench_function("volatile_hit", |b| {
        b.iter(|| {
            k = (k + 37) % N;
            map.get(k).expect("get")
        });
    });
    g.finish();
}

criterion_group!(benches, bench_inserts, bench_gets);
criterion_main!(benches);
