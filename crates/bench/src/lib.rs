//! Shared measurement and reporting helpers for the PAX bench harness.
//!
//! Each binary in `src/bin/` regenerates one figure or table of the paper
//! (see DESIGN.md §4 for the index). The helpers here keep the harness
//! honest: event counts come from *running the functional simulation* —
//! the same `PHashMap` + device + cache code the tests exercise — and the
//! timing models convert counts to nanoseconds with the cited constants.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use libpax::{Heap, MemSpace, PHashMap, PStructure, PaxConfig, PaxPool};
use pax_cache::{CacheConfig, HierarchyConfig, HierarchyStats};
use pax_device::DeviceMetrics;
use pax_pm::PoolConfig;
use pax_workloads::{Op, WorkloadSpec};

pub use pax_telemetry::{Json, Report, TelemetrySnapshot};

/// Shared output sink for every bench binary: human tables by default,
/// one schema-consistent JSON [`Report`] on stdout when the binary is
/// invoked with `--json`.
///
/// Binaries route *all* stdout through this sink — [`BenchOut::line`] and
/// [`BenchOut::table`] are suppressed in JSON mode, so `--json` output is
/// exactly one parseable object. Progress chatter belongs on stderr
/// (`eprintln!`), which stays available in both modes.
pub struct BenchOut {
    json: bool,
    report: Report,
}

impl BenchOut {
    /// A sink for the named benchmark; JSON mode when `--json` is among
    /// the process arguments.
    pub fn from_args(bench: &str) -> Self {
        BenchOut { json: std::env::args().any(|a| a == "--json"), report: Report::new(bench) }
    }

    /// Whether `--json` was requested.
    pub fn json(&self) -> bool {
        self.json
    }

    /// Records one configuration knob into the report.
    pub fn config(&mut self, key: &str, value: Json) {
        self.report.set_config(key, value);
    }

    /// Appends one result row (any JSON object) to the report.
    pub fn push_result(&mut self, row: Json) {
        self.report.push_result(row);
    }

    /// Attaches a cross-layer telemetry snapshot to the report.
    pub fn attach_telemetry(&mut self, snapshot: &TelemetrySnapshot) {
        self.report.attach_telemetry(snapshot);
    }

    /// Prints one line of human output (suppressed under `--json`).
    pub fn line(&self, text: impl AsRef<str>) {
        if !self.json {
            println!("{}", text.as_ref());
        }
    }

    /// Prints a blank human line (suppressed under `--json`).
    pub fn blank(&self) {
        self.line("");
    }

    /// Prints a fixed-width human table (suppressed under `--json`).
    pub fn table(&self, rows: &[Vec<String>]) {
        if !self.json {
            print_table(rows);
        }
    }

    /// Emits the report to stdout when in JSON mode. Call last.
    pub fn finish(&self) {
        if self.json {
            println!("{}", self.report.render());
        }
    }
}

/// Prints a fixed-width table; first row is the header.
pub fn print_table(rows: &[Vec<String>]) {
    if rows.is_empty() {
        return;
    }
    let cols = rows[0].len();
    let widths: Vec<usize> = (0..cols)
        .map(|c| rows.iter().map(|r| r.get(c).map_or(0, |s| s.chars().count())).max().unwrap_or(0))
        .collect();
    for (i, row) in rows.iter().enumerate() {
        let line: Vec<String> = row
            .iter()
            .zip(&widths)
            .map(|(cell, w)| {
                let pad = w.saturating_sub(cell.chars().count());
                format!("{}{}", " ".repeat(pad), cell)
            })
            .collect();
        println!("  {}", line.join("  "));
        if i == 0 {
            let rule: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
            println!("  {}", rule.join("  "));
        }
    }
}

/// Renders `value` as a horizontal bar of `max_width` scaled to `max`.
pub fn bar(value: f64, max: f64, max_width: usize) -> String {
    let n = if max <= 0.0 { 0 } else { ((value / max) * max_width as f64).round() as usize };
    "█".repeat(n.min(max_width))
}

/// A pool sized and instrumented for workload measurement. The hierarchy
/// is the 1/64-scaled c6420 (`HierarchyConfig::c6420_scaled`) so the
/// scaled-down key space produces c6420-like miss rates.
pub fn instrumented_pool(data_bytes: usize) -> PaxPool {
    let config = PaxConfig::default()
        .with_pool(PoolConfig::small().with_data_bytes(data_bytes).with_log_bytes(8 << 20))
        .with_cache(CacheConfig::tiny((22 << 20) / 64, 11))
        .with_instrumentation(HierarchyConfig::c6420_scaled());
    PaxPool::create(config).expect("pool creation cannot fail with valid config")
}

/// Runs `spec` against a `PHashMap` on the given space; returns ops run.
///
/// # Panics
///
/// Panics on simulation errors (they indicate harness bugs, not results).
pub fn run_workload<S: MemSpace>(space: S, spec: &WorkloadSpec) -> u64
where
    PHashMap<u64, u64, S>: PStructure<S>,
{
    let heap = Heap::attach(space).expect("heap attach");
    let map: PHashMap<u64, u64, S> = PHashMap::attach(heap).expect("map attach");
    // Preload so reads hit (the paper's read benchmarks run on a loaded
    // table).
    if spec.mix.read_pct > 0 || spec.mix.update_pct > 0 {
        for k in spec.load_keys() {
            map.insert(k, k).expect("load");
        }
    }
    let mut n = 0;
    for op in spec.ops() {
        match op {
            Op::Get(k) => {
                map.get(k).expect("get");
            }
            Op::Insert(k, v) | Op::Update(k, v) => {
                map.insert(k, v).expect("insert");
            }
            Op::Remove(k) => {
                map.remove(k).expect("remove");
            }
        }
        n += 1;
    }
    n
}

/// Measures Fig. 2a's miss rates: uniform-random `get()`s with 8 B
/// keys/values on a preloaded table, returning the hierarchy statistics
/// of the *measurement phase only* plus the device's event counters
/// after persisting the loaded table (so the figure's JSON captures the
/// run's snoop traffic, including the directory-elided share).
pub fn measure_fig2a_miss_rates(keys: u64, ops: u64) -> (HierarchyStats, DeviceMetrics) {
    let pool = instrumented_pool(64 << 20);
    let spec = WorkloadSpec::fig2a_read_only(keys, 0);
    // Load phase (not measured):
    run_workload(pool.vpm(), &spec);
    let loaded = pool.hierarchy_stats().expect("instrumented");

    // Measurement phase:
    let spec = WorkloadSpec::fig2a_read_only(keys, ops);
    let heap = Heap::attach(pool.vpm()).expect("heap");
    let map: PHashMap<u64, u64, _> = PHashMap::attach(heap).expect("map");
    for op in spec.ops() {
        if let Op::Get(k) = op {
            map.get(k).expect("get");
        }
    }
    let total = pool.hierarchy_stats().expect("instrumented");
    // Close the load epoch so the snoop counters reflect a full persist.
    pool.persist().expect("persist");
    let metrics = pool.device_metrics().expect("metrics");
    (subtract_stats(total, loaded), metrics)
}

fn subtract_stats(a: HierarchyStats, b: HierarchyStats) -> HierarchyStats {
    use pax_cache::LevelStats;
    let sub = |x: LevelStats, y: LevelStats| LevelStats {
        accesses: x.accesses - y.accesses,
        hits: x.hits - y.hits,
    };
    HierarchyStats { l1: sub(a.l1, b.l1), l2: sub(a.l2, b.l2), llc: sub(a.llc, b.llc) }
}

/// Measures the per-op event profile for write-only inserts by running
/// the functional device simulation, for use by the Fig. 2b recipes.
pub fn measure_insert_profile(keys: u64, ops: u64) -> pax_exec::OpProfile {
    let pool = instrumented_pool(64 << 20);
    let spec = WorkloadSpec::fig2b_write_only(keys, ops);
    let n = run_workload(pool.vpm(), &spec);
    let cache = pool.cache_stats();
    let misses = (cache.read_misses + cache.write_upgrades) as f64 / n as f64;
    let stores = cache.write_upgrades as f64 / n as f64;
    pax_exec::OpProfile { misses_per_op: misses, stores_per_op: stores, compute_ns: 60 }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bar_scales() {
        assert_eq!(bar(5.0, 10.0, 10).chars().count(), 5);
        assert_eq!(bar(0.0, 10.0, 10), "");
        assert_eq!(bar(20.0, 10.0, 10).chars().count(), 10);
        assert_eq!(bar(1.0, 0.0, 10), "");
    }

    #[test]
    fn fig2a_miss_rates_are_plausible() {
        let (s, m) = measure_fig2a_miss_rates(2_000, 4_000);
        assert!(s.total_accesses() > 0);
        // Uniform random gets over a table larger than L1 must miss some.
        assert!(s.l1.miss_ratio() > 0.01, "L1 miss {}", s.l1.miss_ratio());
        assert!(s.l1.miss_ratio() < 1.0);
        // The load epoch persisted, so snoop accounting is live.
        assert!(m.persists >= 1);
        assert_eq!(m.dir_hits + m.dir_filtered_snoops, m.undo_entries);
    }

    #[test]
    fn insert_profile_is_measured_not_invented() {
        let p = measure_insert_profile(500, 1_000);
        assert!(p.misses_per_op > 0.0);
        assert!(p.stores_per_op > 0.0);
        assert!(p.stores_per_op < 50.0);
    }
}
