//! Shared measurement and reporting helpers for the PAX bench harness.
//!
//! Each binary in `src/bin/` regenerates one figure or table of the paper
//! (see DESIGN.md §4 for the index). The helpers here keep the harness
//! honest: event counts come from *running the functional simulation* —
//! the same `PHashMap` + device + cache code the tests exercise — and the
//! timing models convert counts to nanoseconds with the cited constants.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use libpax::{Heap, MemSpace, PHashMap, PStructure, PaxConfig, PaxPool};
use pax_cache::{CacheConfig, HierarchyConfig, HierarchyStats};
use pax_device::{DeviceConfig, DeviceMetrics};
use pax_pm::{PoolConfig, LINE_SIZE};
use pax_workloads::{Op, WorkloadSpec};

pub use pax_telemetry::{Json, Report, TelemetrySnapshot};

/// Shared output sink for every bench binary: human tables by default,
/// one schema-consistent JSON [`Report`] on stdout when the binary is
/// invoked with `--json`.
///
/// Binaries route *all* stdout through this sink — [`BenchOut::line`] and
/// [`BenchOut::table`] are suppressed in JSON mode, so `--json` output is
/// exactly one parseable object. Progress chatter belongs on stderr
/// (`eprintln!`), which stays available in both modes.
pub struct BenchOut {
    json: bool,
    report: Report,
}

impl BenchOut {
    /// A sink for the named benchmark; JSON mode when `--json` is among
    /// the process arguments.
    pub fn from_args(bench: &str) -> Self {
        BenchOut { json: std::env::args().any(|a| a == "--json"), report: Report::new(bench) }
    }

    /// Whether `--json` was requested.
    pub fn json(&self) -> bool {
        self.json
    }

    /// Records one configuration knob into the report.
    pub fn config(&mut self, key: &str, value: Json) {
        self.report.set_config(key, value);
    }

    /// Appends one result row (any JSON object) to the report.
    pub fn push_result(&mut self, row: Json) {
        self.report.push_result(row);
    }

    /// Attaches a cross-layer telemetry snapshot to the report.
    pub fn attach_telemetry(&mut self, snapshot: &TelemetrySnapshot) {
        self.report.attach_telemetry(snapshot);
    }

    /// Prints one line of human output (suppressed under `--json`).
    pub fn line(&self, text: impl AsRef<str>) {
        if !self.json {
            println!("{}", text.as_ref());
        }
    }

    /// Prints a blank human line (suppressed under `--json`).
    pub fn blank(&self) {
        self.line("");
    }

    /// Prints a fixed-width human table (suppressed under `--json`).
    pub fn table(&self, rows: &[Vec<String>]) {
        if !self.json {
            print_table(rows);
        }
    }

    /// Emits the report to stdout when in JSON mode. Call last.
    pub fn finish(&self) {
        if self.json {
            println!("{}", self.report.render());
        }
    }
}

/// Whether `name` (e.g. `--measured`) is among the process arguments.
pub fn flag(name: &str) -> bool {
    std::env::args().any(|a| a == name)
}

/// The value following `--name` (or inside `--name=value`), if present.
pub fn arg_value(name: &str) -> Option<String> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == name {
            return args.next();
        }
        if let Some(v) = a.strip_prefix(name) {
            if let Some(v) = v.strip_prefix('=') {
                return Some(v.to_string());
            }
        }
    }
    None
}

/// Parses a `--name 1,2,4,8`-style comma-separated count list, falling
/// back to `default` when the flag is absent.
///
/// # Panics
///
/// Panics on an unparseable or empty list — a bench invocation error.
pub fn arg_counts(name: &str, default: &[usize]) -> Vec<usize> {
    match arg_value(name) {
        None => default.to_vec(),
        Some(v) => {
            let counts: Vec<usize> = v
                .split(',')
                .map(|s| s.trim().parse().unwrap_or_else(|_| panic!("bad count in {name}: {s:?}")))
                .collect();
            assert!(!counts.is_empty(), "{name} needs at least one count");
            counts
        }
    }
}

/// Thread-count series for a scaling bench: `--threads 1,2,4,8` when
/// given, `default` otherwise.
pub fn thread_series(default: &[usize]) -> Vec<usize> {
    arg_counts("--threads", default)
}

/// Measured wall-clock store throughput in Mops: `threads` OS threads,
/// each attached to its own tenant pool context and issuing
/// line-granularity stores through its own core's cache against a
/// `shards`-way interleaved device, ending in one per-tenant persist.
///
/// This is the *real-thread* fig2b series: no event model, no virtual
/// clock — just the `Send + Sync` [`PaxPool`] under `std::thread` and an
/// [`std::time::Instant`]. Tracing is disabled so the trace lock never
/// serializes the hot path, and the working set per thread exceeds the
/// host cache share so stores keep reaching the device's lanes.
///
/// # Panics
///
/// Panics on simulation errors (they indicate harness bugs, not results).
pub fn measure_threaded_store_mops(threads: usize, shards: usize, ops_per_thread: u64) -> f64 {
    let config = PaxConfig::default()
        .with_pool(PoolConfig::small().with_data_bytes(64 << 20).with_log_bytes(128 << 20))
        .with_cores(threads)
        .with_tenants(threads)
        .with_auto_persist_on_log_full()
        .with_device(
            DeviceConfig::default()
                .with_shards(shards)
                .with_trace_capacity(0)
                // Pump the undo banks in large, infrequent batches: same
                // per-entry durable work, far fewer acquisitions of the
                // global media lock on the store path.
                .with_log_pump_batch(32)
                .with_log_pump_interval(32),
        );
    let pool = PaxPool::create(config).expect("pool creation cannot fail with valid config");
    let start = std::time::Instant::now();
    std::thread::scope(|s| {
        for t in 0..threads {
            let tenant = pool.attach(t).expect("attach");
            s.spawn(move || {
                let vpm = tenant.vpm_for_core(t);
                let lines = tenant.vpm_bytes() / LINE_SIZE as u64;
                // 4× the 64 KiB host cache per thread, so the stream keeps
                // evicting into the device instead of parking in the cache.
                let working_set = 4 * (64 << 10) / LINE_SIZE as u64;
                let span = working_set.min(lines);
                for i in 0..ops_per_thread {
                    // A fixed odd stride walks the whole span co-prime to
                    // any power-of-two set count.
                    let line = (i * 17) % span;
                    vpm.write_u64(line * LINE_SIZE as u64, i).expect("store");
                }
                tenant.persist().expect("persist");
            });
        }
    });
    let secs = start.elapsed().as_secs_f64();
    (threads as u64 * ops_per_thread) as f64 / secs / 1e6
}

/// Prints a fixed-width table; first row is the header.
pub fn print_table(rows: &[Vec<String>]) {
    if rows.is_empty() {
        return;
    }
    let cols = rows[0].len();
    let widths: Vec<usize> = (0..cols)
        .map(|c| rows.iter().map(|r| r.get(c).map_or(0, |s| s.chars().count())).max().unwrap_or(0))
        .collect();
    for (i, row) in rows.iter().enumerate() {
        let line: Vec<String> = row
            .iter()
            .zip(&widths)
            .map(|(cell, w)| {
                let pad = w.saturating_sub(cell.chars().count());
                format!("{}{}", " ".repeat(pad), cell)
            })
            .collect();
        println!("  {}", line.join("  "));
        if i == 0 {
            let rule: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
            println!("  {}", rule.join("  "));
        }
    }
}

/// Renders `value` as a horizontal bar of `max_width` scaled to `max`.
pub fn bar(value: f64, max: f64, max_width: usize) -> String {
    let n = if max <= 0.0 { 0 } else { ((value / max) * max_width as f64).round() as usize };
    "█".repeat(n.min(max_width))
}

/// A pool sized and instrumented for workload measurement. The hierarchy
/// is the 1/64-scaled c6420 (`HierarchyConfig::c6420_scaled`) so the
/// scaled-down key space produces c6420-like miss rates.
pub fn instrumented_pool(data_bytes: usize) -> PaxPool {
    let config = PaxConfig::default()
        .with_pool(PoolConfig::small().with_data_bytes(data_bytes).with_log_bytes(8 << 20))
        .with_cache(CacheConfig::tiny((22 << 20) / 64, 11))
        .with_instrumentation(HierarchyConfig::c6420_scaled());
    PaxPool::create(config).expect("pool creation cannot fail with valid config")
}

/// Runs `spec` against a `PHashMap` on the given space; returns ops run.
///
/// # Panics
///
/// Panics on simulation errors (they indicate harness bugs, not results).
pub fn run_workload<S: MemSpace>(space: S, spec: &WorkloadSpec) -> u64
where
    PHashMap<u64, u64, S, Heap<S>>: PStructure<S, Heap<S>>,
{
    // Pinned to the serial `Heap` so the figure workloads keep their
    // historical allocation pattern (the `BitmapAlloc` default changes
    // address layout, which would shift measured miss rates).
    let heap = Heap::attach(space).expect("heap attach");
    let map: PHashMap<u64, u64, S, Heap<S>> = PHashMap::attach(heap).expect("map attach");
    // Preload so reads hit (the paper's read benchmarks run on a loaded
    // table).
    if spec.mix.read_pct > 0 || spec.mix.update_pct > 0 {
        for k in spec.load_keys() {
            map.insert(k, k).expect("load");
        }
    }
    let mut n = 0;
    for op in spec.ops() {
        match op {
            Op::Get(k) => {
                map.get(k).expect("get");
            }
            Op::Insert(k, v) | Op::Update(k, v) => {
                map.insert(k, v).expect("insert");
            }
            Op::Remove(k) => {
                map.remove(k).expect("remove");
            }
        }
        n += 1;
    }
    n
}

/// Measures Fig. 2a's miss rates: uniform-random `get()`s with 8 B
/// keys/values on a preloaded table, returning the hierarchy statistics
/// of the *measurement phase only* plus the device's event counters
/// after persisting the loaded table (so the figure's JSON captures the
/// run's snoop traffic, including the directory-elided share).
pub fn measure_fig2a_miss_rates(keys: u64, ops: u64) -> (HierarchyStats, DeviceMetrics) {
    let pool = instrumented_pool(64 << 20);
    let spec = WorkloadSpec::fig2a_read_only(keys, 0);
    // Load phase (not measured):
    run_workload(pool.vpm(), &spec);
    let loaded = pool.hierarchy_stats().expect("instrumented");

    // Measurement phase:
    let spec = WorkloadSpec::fig2a_read_only(keys, ops);
    let heap = Heap::attach(pool.vpm()).expect("heap");
    let map: PHashMap<u64, u64, _, Heap<_>> = PHashMap::attach(heap).expect("map");
    for op in spec.ops() {
        if let Op::Get(k) = op {
            map.get(k).expect("get");
        }
    }
    let total = pool.hierarchy_stats().expect("instrumented");
    // Close the load epoch so the snoop counters reflect a full persist.
    pool.persist().expect("persist");
    let metrics = pool.device_metrics().expect("metrics");
    (subtract_stats(total, loaded), metrics)
}

fn subtract_stats(a: HierarchyStats, b: HierarchyStats) -> HierarchyStats {
    use pax_cache::LevelStats;
    let sub = |x: LevelStats, y: LevelStats| LevelStats {
        accesses: x.accesses - y.accesses,
        hits: x.hits - y.hits,
    };
    HierarchyStats { l1: sub(a.l1, b.l1), l2: sub(a.l2, b.l2), llc: sub(a.llc, b.llc) }
}

/// Measures the per-op event profile for write-only inserts by running
/// the functional device simulation, for use by the Fig. 2b recipes.
pub fn measure_insert_profile(keys: u64, ops: u64) -> pax_exec::OpProfile {
    let pool = instrumented_pool(64 << 20);
    let spec = WorkloadSpec::fig2b_write_only(keys, ops);
    let n = run_workload(pool.vpm(), &spec);
    let cache = pool.cache_stats();
    let misses = (cache.read_misses + cache.write_upgrades) as f64 / n as f64;
    let stores = cache.write_upgrades as f64 / n as f64;
    pax_exec::OpProfile { misses_per_op: misses, stores_per_op: stores, compute_ns: 60 }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bar_scales() {
        assert_eq!(bar(5.0, 10.0, 10).chars().count(), 5);
        assert_eq!(bar(0.0, 10.0, 10), "");
        assert_eq!(bar(20.0, 10.0, 10).chars().count(), 10);
        assert_eq!(bar(1.0, 0.0, 10), "");
    }

    #[test]
    fn fig2a_miss_rates_are_plausible() {
        let (s, m) = measure_fig2a_miss_rates(2_000, 4_000);
        assert!(s.total_accesses() > 0);
        // Uniform random gets over a table larger than L1 must miss some.
        assert!(s.l1.miss_ratio() > 0.01, "L1 miss {}", s.l1.miss_ratio());
        assert!(s.l1.miss_ratio() < 1.0);
        // The load epoch persisted, so snoop accounting is live.
        assert!(m.persists >= 1);
        assert_eq!(m.dir_hits + m.dir_filtered_snoops, m.undo_entries);
    }

    #[test]
    fn insert_profile_is_measured_not_invented() {
        let p = measure_insert_profile(500, 1_000);
        assert!(p.misses_per_op > 0.0);
        assert!(p.stores_per_op > 0.0);
        assert!(p.stores_per_op < 50.0);
    }
}
