//! T-bw: the §5.1 bandwidth and bottleneck analysis.
//!
//! "CXL-enabled accelerators could support up to 63 GB/s … a single CPU
//! socket with an Optane DC PM DIMM per memory channel peaks at about
//! 40 GB/s of read bandwidth and 14 GB/s for writes … Overall, we expect
//! that I/O bus bandwidth will not be a primary bottleneck in PAX.
//! (But) the CVU9P FPGA that runs PAX is clocked at 300 MHz … we expect
//! this will still be a bottleneck."
//!
//! Run: `cargo run --release -p pax-bench --bin bandwidth` (add `--json`
//! for machine-readable output)

use pax_bench::{BenchOut, Json};
use pax_cxl::link::OfferedLoad;
use pax_cxl::{LinkModel, Resource};
use pax_pm::BandwidthProfile;

const SCENARIOS: [(&str, f64, f64, f64); 3] = [
    ("read-heavy", 100e6, 5e6, 5e6),
    ("mixed", 100e6, 50e6, 50e6),
    ("write-heavy", 20e6, 150e6, 150e6),
];

fn report(
    out: &mut BenchOut,
    model: &LinkModel,
    device: &str,
    name: &str,
    load: &OfferedLoad,
    rows: &mut Vec<Vec<String>>,
) {
    let r = model.analyze(load);
    let (binding, u) = r.binding();
    rows.push(vec![
        name.to_string(),
        format!("{:.0}M", load.read_misses_per_sec / 1e6),
        format!("{:.0}M", load.rdown_per_sec / 1e6),
        format!("{:.1}%", r.of(Resource::LinkD2H) * 100.0),
        format!("{:.1}%", r.of(Resource::PmRead) * 100.0),
        format!("{:.1}%", r.of(Resource::PmWrite) * 100.0),
        format!("{:.1}%", r.of(Resource::DeviceMsgRate) * 100.0),
        format!("{} ({:.0}%)", binding.label(), u * 100.0),
    ]);
    out.push_result(
        Json::obj()
            .field("device", Json::str(device))
            .field("scenario", Json::str(name))
            .field("read_misses_per_sec", Json::F64(load.read_misses_per_sec))
            .field("rdown_per_sec", Json::F64(load.rdown_per_sec))
            .field("dirty_evicts_per_sec", Json::F64(load.dirty_evicts_per_sec))
            .field("report", r.to_json()),
    );
}

fn main() {
    let mut out = BenchOut::from_args("bandwidth");
    out.config("hbm_hit_rate", Json::F64(0.5));
    out.line("§5.1 bottleneck analysis — resource utilisation under offered load\n");
    let header = vec![
        "scenario".to_string(),
        "misses/s".to_string(),
        "RdOwn/s".to_string(),
        "link D2H".to_string(),
        "PM read".to_string(),
        "PM write".to_string(),
        "device".to_string(),
        "binding".to_string(),
    ];

    let fpga = LinkModel::new(BandwidthProfile::paper());
    let mut rows = vec![header.clone()];
    for (name, misses, rdown, evicts) in SCENARIOS {
        report(
            &mut out,
            &fpga,
            "fpga_300mhz",
            name,
            &OfferedLoad {
                read_misses_per_sec: misses,
                rdown_per_sec: rdown,
                dirty_evicts_per_sec: evicts,
                hbm_hit_rate: 0.5,
            },
            &mut rows,
        );
    }
    out.line("300 MHz FPGA device (the Enzian prototype):");
    out.table(&rows);

    let asic = LinkModel::new(BandwidthProfile {
        device_clock_hz: 2.0e9,
        device_msgs_per_cycle: 1.0,
        ..BandwidthProfile::paper()
    });
    let mut rows = vec![header];
    for (name, misses, rdown, evicts) in SCENARIOS {
        report(
            &mut out,
            &asic,
            "asic_2ghz",
            name,
            &OfferedLoad {
                read_misses_per_sec: misses,
                rdown_per_sec: rdown,
                dirty_evicts_per_sec: evicts,
                hbm_hit_rate: 0.5,
            },
            &mut rows,
        );
    }
    out.line("\nASIC-class device (2 GHz, §5.1 \"designs … that include ASICs\"):");
    out.table(&rows);

    let b = BandwidthProfile::paper();
    out.blank();
    out.line(format!(
        "link supports {:.0}M line transfers/s vs device {:.0}M msgs/s:",
        b.cxl_lines_per_sec() / 1e6,
        b.device_msgs_per_sec() / 1e6
    ));
    out.line("the I/O bus is not the primary bottleneck (§5.1); the FPGA message rate is,");
    out.line("and with an ASIC the binding resource shifts to PM write bandwidth.");
    out.finish();
}
