//! A-evict: ablation of the HBM eviction policy (§3.3).
//!
//! "The device buffer's eviction policy can try to minimize stalls by
//! preferring to evict cache lines whose undo log entries are already
//! durable." The policies only differ when recency order diverges from
//! log order, so the workload keeps a *hot set* (logged early in the
//! epoch, hence durable early, but constantly re-dirtied and
//! most-recently-used) while a *cold stream* of fresh lines (logged late,
//! entries still queued) pushes the HBM buffer to evict:
//!
//! * **LRU** evicts the oldest-touched line — a cold one whose undo entry
//!   is not durable yet ⇒ a synchronous log-flush stall;
//! * **prefer-durable** sacrifices a hot line whose entry persisted long
//!   ago ⇒ write back with no stall.
//!
//! Run: `cargo run --release -p pax-bench --bin ablation_eviction` (add
//! `--json` for machine-readable output)

use libpax::{MemSpace, PaxConfig, PaxPool};
use pax_bench::{BenchOut, Json};
use pax_cache::CacheConfig;
use pax_device::{DeviceConfig, EvictionPolicy, HbmConfig};
use pax_pm::{PoolConfig, LINE_SIZE};

const HOT_LINES: u64 = 16;
const COLD_LINES: u64 = 1024;

fn run(policy: EvictionPolicy, pump_interval: usize) -> (u64, u64, u64) {
    let total_lines = (HOT_LINES + COLD_LINES) as usize;
    let pool = PaxPool::create(
        PaxConfig::default()
            .with_pool(
                PoolConfig::small()
                    .with_data_bytes(total_lines * LINE_SIZE * 2)
                    .with_log_bytes(total_lines * 128 * 2),
            )
            .with_device(
                DeviceConfig::default()
                    .with_hbm(HbmConfig { capacity_bytes: 32 * LINE_SIZE, ways: 4, policy })
                    .with_log_pump_batch(1)
                    .with_log_pump_interval(pump_interval)
                    .with_writeback_batch(0),
            )
            // Host cache of 8 lines: dirty lines reach the device quickly.
            .with_cache(CacheConfig::tiny(8 * LINE_SIZE, 2)),
    )
    .expect("pool");

    let vpm = pool.vpm();
    let line = LINE_SIZE as u64;
    // Cold write stream interleaved with hot reads: the hot lines sit in
    // HBM as clean, most-recently-used copies; the cold lines sit dirty
    // with not-yet-durable undo entries. LRU evicts the oldest line — a
    // dirty cold one (stall); prefer-durable picks a clean hot one.
    for c in 0..COLD_LINES {
        let addr = (HOT_LINES + c) * line;
        vpm.write_u64(addr, c).expect("cold write");
        vpm.read_u64((c % HOT_LINES) * line).expect("hot read");
    }
    pool.persist().expect("persist");
    let m = pool.device_metrics().expect("metrics");
    (m.forced_log_flushes, m.device_writebacks, m.undo_entries)
}

fn main() {
    let mut out = BenchOut::from_args("ablation_eviction");
    out.config("hot_lines", Json::U64(HOT_LINES));
    out.config("cold_lines", Json::U64(COLD_LINES));
    out.line(format!(
        "HBM eviction policy ablation — {HOT_LINES} hot + {COLD_LINES} cold lines, 32-line HBM\n"
    ));
    let mut rows = vec![vec![
        "log pump rate".to_string(),
        "policy".to_string(),
        "eviction stalls".to_string(),
        "device writebacks".to_string(),
    ]];
    for interval in [1usize, 8, 32] {
        for (policy, name) in
            [(EvictionPolicy::Lru, "LRU"), (EvictionPolicy::PreferDurable, "prefer-durable")]
        {
            let (stalls, wb, _) = run(policy, interval);
            rows.push(vec![
                format!("1 per {interval} reqs"),
                name.to_string(),
                stalls.to_string(),
                wb.to_string(),
            ]);
            out.push_result(
                Json::obj()
                    .field("pump_interval", Json::U64(interval as u64))
                    .field("policy", Json::str(name))
                    .field("eviction_stalls", Json::U64(stalls))
                    .field("device_writebacks", Json::U64(wb)),
            );
        }
    }
    out.table(&rows);
    out.blank();
    out.line("measured finding: when the pump keeps up (1/1) neither policy ever stalls;");
    out.line("when it lags, prefer-durable shaves only a few percent of stalls. Because the");
    out.line("undo log is append-ordered, a line's LRU age correlates with its entry's");
    out.line("durability, so plain LRU already approximates the §3.3 policy — the paper's");
    out.line("\"can try to minimize stalls\" hypothesis buys little beyond LRU unless the");
    out.line("workload re-dirties early-epoch lines late (which keeps early, durable log");
    out.line("offsets attached to recently-used lines).");
    out.finish();
}
