//! A-overlap: ablation of non-blocking persist (§6 extension).
//!
//! "We believe it may be possible to make persist() fully non-blocking,
//! so that epochs overlap and threads never stall even during persist()."
//!
//! The implemented design snapshots the epoch (one snoop sweep) at
//! `persist_async()` and defers log flushing, write back, and the commit
//! to background progress. This harness counts the *inline* durable-write
//! steps the application waits for under each variant, sweeping epoch
//! size — the work a blocking `persist()` does in the caller's critical
//! path versus what overlap defers.
//!
//! Run: `cargo run --release -p pax-bench --bin ablation_overlap` (add
//! `--json` for machine-readable output)

use libpax::{MemSpace, PaxConfig, PaxPool};
use pax_bench::{BenchOut, Json};
use pax_device::DeviceConfig;
use pax_pm::PoolConfig;

fn config() -> PaxConfig {
    PaxConfig::default()
        .with_pool(PoolConfig::small().with_data_bytes(16 << 20).with_log_bytes(128 << 20))
}

/// The free-running variant: foreground requests never pump (interval
/// `usize::MAX`), so *all* background progress comes from explicit
/// virtual ticks — the decoupled device the scheduler makes possible.
fn free_running_config() -> PaxConfig {
    config().with_device(DeviceConfig::default().with_log_pump_interval(usize::MAX))
}

fn main() {
    let mut out = BenchOut::from_args("ablation_overlap");
    out.line("non-blocking persist: inline device steps the application waits for\n");
    let mut rows = vec![vec![
        "epoch size [lines]".to_string(),
        "sync persist (inline)".to_string(),
        "async begin (inline)".to_string(),
        "deferred drain steps".to_string(),
        "inline reduction".to_string(),
    ]];

    for lines in [16u64, 64, 256, 1024] {
        // Synchronous: everything inline.
        let pool = PaxPool::create(config()).expect("pool");
        let vpm = pool.vpm();
        for i in 0..lines {
            vpm.write_u64(i * 64, i).expect("write");
        }
        let clock = pool.crash_clock().expect("clock");
        let before = clock.steps_taken();
        pool.persist().expect("persist");
        let sync_inline = clock.steps_taken() - before;

        // Asynchronous: begin, then background drain.
        let pool = PaxPool::create(config()).expect("pool");
        let vpm = pool.vpm();
        for i in 0..lines {
            vpm.write_u64(i * 64, i).expect("write");
        }
        let clock = pool.crash_clock().expect("clock");
        let before = clock.steps_taken();
        pool.persist_async().expect("persist_async");
        let async_inline = clock.steps_taken() - before;
        let before_drain = clock.steps_taken();
        pool.persist_wait().expect("wait");
        let drain_steps = clock.steps_taken() - before_drain;

        rows.push(vec![
            lines.to_string(),
            sync_inline.to_string(),
            async_inline.to_string(),
            drain_steps.to_string(),
            format!("{:.0}×", sync_inline as f64 / async_inline.max(1) as f64),
        ]);
        out.push_result(
            Json::obj()
                .field("epoch_lines", Json::U64(lines))
                .field("sync_inline_steps", Json::U64(sync_inline))
                .field("async_inline_steps", Json::U64(async_inline))
                .field("deferred_drain_steps", Json::U64(drain_steps))
                .field(
                    "inline_reduction",
                    Json::F64(sync_inline as f64 / async_inline.max(1) as f64),
                ),
        );
    }
    out.table(&rows);

    // Free-running series: the device advances only on explicit virtual
    // ticks (`run_device`), decoupled from the request path. Sweeping the
    // tick budget granted per store shows how much background headroom an
    // overlapped epoch needs before `persist_async()` stops paying for
    // the previous epoch's drain inline.
    let epoch_lines = 1024u64;
    out.blank();
    out.line("free-running device: ticks per store vs inline steps at the next persist_async\n");
    let mut fr_rows = vec![vec![
        "ticks/store".to_string(),
        "snoop sweep (round 0)".to_string(),
        "steady inline".to_string(),
        "final drain steps".to_string(),
    ]];
    for budget in [0u64, 1, 4, 16, 64] {
        let pool = PaxPool::create(free_running_config()).expect("pool");
        let vpm = pool.vpm();
        let clock = pool.crash_clock().expect("clock");
        let mut floor = 0u64; // round-0 inline: the pure snoop-sweep cost
        let mut steady = 0u64; // mean inline of the overlapped rounds
        for round in 0..4u64 {
            // Alternate between two disjoint line regions so the epoch
            // being written never collides with the epoch draining.
            let base = (round % 2) * epoch_lines * 64;
            for i in 0..epoch_lines {
                vpm.write_u64(base + i * 64, round * epoch_lines + i).expect("write");
                if budget > 0 {
                    pool.run_device(budget).expect("tick");
                }
            }
            let before = clock.steps_taken();
            pool.persist_async().expect("persist_async");
            let inline = clock.steps_taken() - before;
            if round == 0 {
                floor = inline;
            } else {
                steady += inline;
            }
        }
        let steady = steady / 3;
        let before = clock.steps_taken();
        pool.persist_wait().expect("wait");
        let final_drain = clock.steps_taken() - before;
        fr_rows.push(vec![
            budget.to_string(),
            floor.to_string(),
            steady.to_string(),
            final_drain.to_string(),
        ]);
        out.push_result(
            Json::obj()
                .field("series", Json::str("free_running"))
                .field("tick_budget", Json::U64(budget))
                .field("epoch_lines", Json::U64(epoch_lines))
                .field("inline_steps", Json::U64(steady))
                .field("snoop_sweep_steps", Json::U64(floor)),
        );
    }
    out.table(&fr_rows);

    out.blank();
    out.line("persist_async() returns after the snoop sweep alone; the log flush, write");
    out.line("back, and epoch commit ride on subsequent device activity. Total work is");
    out.line("unchanged (inline+deferred ≈ sync) — it has moved off the caller's critical");
    out.line("path, which is precisely the §6 goal. The §6 caveat also shows up: the undo");
    out.line("log cannot recycle while an overlapped epoch drains, so sustained overlap");
    out.line("needs a larger log region (here 128 MiB).");
    out.blank();
    out.line("The free-running series runs the device purely on virtual ticks: with no");
    out.line("tick budget every deferred step snaps back into the next persist_async();");
    out.line("with enough ticks per store the drain completes between persists and the");
    out.line("inline cost converges to the snoop sweep alone.");
    out.finish();
}
