//! A-overlap: ablation of non-blocking persist (§6 extension).
//!
//! "We believe it may be possible to make persist() fully non-blocking,
//! so that epochs overlap and threads never stall even during persist()."
//!
//! The implemented design snapshots the epoch (one snoop sweep) at
//! `persist_async()` and defers log flushing, write back, and the commit
//! to background progress. This harness counts the *inline* durable-write
//! steps the application waits for under each variant, sweeping epoch
//! size — the work a blocking `persist()` does in the caller's critical
//! path versus what overlap defers.
//!
//! Run: `cargo run --release -p pax-bench --bin ablation_overlap` (add
//! `--json` for machine-readable output)

use libpax::{MemSpace, PaxConfig, PaxPool};
use pax_bench::{BenchOut, Json};
use pax_pm::PoolConfig;

fn config() -> PaxConfig {
    PaxConfig::default()
        .with_pool(PoolConfig::small().with_data_bytes(16 << 20).with_log_bytes(128 << 20))
}

fn main() {
    let mut out = BenchOut::from_args("ablation_overlap");
    out.line("non-blocking persist: inline device steps the application waits for\n");
    let mut rows = vec![vec![
        "epoch size [lines]".to_string(),
        "sync persist (inline)".to_string(),
        "async begin (inline)".to_string(),
        "deferred drain steps".to_string(),
        "inline reduction".to_string(),
    ]];

    for lines in [16u64, 64, 256, 1024] {
        // Synchronous: everything inline.
        let pool = PaxPool::create(config()).expect("pool");
        let vpm = pool.vpm();
        for i in 0..lines {
            vpm.write_u64(i * 64, i).expect("write");
        }
        let clock = pool.crash_clock().expect("clock");
        let before = clock.steps_taken();
        pool.persist().expect("persist");
        let sync_inline = clock.steps_taken() - before;

        // Asynchronous: begin, then background drain.
        let pool = PaxPool::create(config()).expect("pool");
        let vpm = pool.vpm();
        for i in 0..lines {
            vpm.write_u64(i * 64, i).expect("write");
        }
        let clock = pool.crash_clock().expect("clock");
        let before = clock.steps_taken();
        pool.persist_async().expect("persist_async");
        let async_inline = clock.steps_taken() - before;
        let before_drain = clock.steps_taken();
        pool.persist_wait().expect("wait");
        let drain_steps = clock.steps_taken() - before_drain;

        rows.push(vec![
            lines.to_string(),
            sync_inline.to_string(),
            async_inline.to_string(),
            drain_steps.to_string(),
            format!("{:.0}×", sync_inline as f64 / async_inline.max(1) as f64),
        ]);
        out.push_result(
            Json::obj()
                .field("epoch_lines", Json::U64(lines))
                .field("sync_inline_steps", Json::U64(sync_inline))
                .field("async_inline_steps", Json::U64(async_inline))
                .field("deferred_drain_steps", Json::U64(drain_steps))
                .field(
                    "inline_reduction",
                    Json::F64(sync_inline as f64 / async_inline.max(1) as f64),
                ),
        );
    }
    out.table(&rows);

    out.blank();
    out.line("persist_async() returns after the snoop sweep alone; the log flush, write");
    out.line("back, and epoch commit ride on subsequent device activity. Total work is");
    out.line("unchanged (inline+deferred ≈ sync) — it has moved off the caller's critical");
    out.line("path, which is precisely the §6 goal. The §6 caveat also shows up: the undo");
    out.line("log cannot recycle while an overlapped epoch drains, so sustained overlap");
    out.line("needs a larger log region (here 128 MiB).");
    out.finish();
}
