//! Multi-tenant noisy-neighbor isolation.
//!
//! One PAX device hosts two pool contexts: a well-behaved **victim**
//! running small epochs (write a working set, `persist()`), and an
//! **aggressor** hammering its own extent with 8× the write volume and
//! persisting rarely, so its undo-log backlog stays deep. The harness
//! measures the durable-write steps consumed *during the victim's own
//! operations* — the deterministic analogue of the victim's latency —
//! with the aggressor idle (`solo`) and active (`noisy`).
//!
//! Per-tenant epochs and per-lane banks make the isolation structural:
//! the victim's `persist()` never flushes or stalls the aggressor's
//! epoch, and vice versa. What remains shared is *time* (each foreground
//! request donates one bounded idle step to a backlogged lane) — so the
//! victim pays a small, bounded tax, quantified here as
//! `victim_ratio = noisy throughput / solo throughput`. CI enforces the
//! isolation floor: the victim keeps ≥ 70 % of its solo throughput.
//!
//! Run: `cargo run --release -p pax-bench --bin tenants` (add `--json`
//! for machine-readable output)

use libpax::{MemSpace, PaxConfig, PaxPool, PaxTenant};
use pax_bench::{BenchOut, Json};
use pax_device::DeviceConfig;
use pax_pm::{PoolConfig, LINE_SIZE};

const ROUNDS: u64 = 8;
const VICTIM_LINES: u64 = 64;
const AGGRESSOR_FACTOR: u64 = 8;

fn config() -> PaxConfig {
    PaxConfig::default()
        .with_pool(PoolConfig::small().with_data_bytes(16 << 20).with_log_bytes(32 << 20))
        .with_device(DeviceConfig::default().with_shards(2))
        .with_tenants(2)
        .with_auto_persist_on_log_full()
}

/// One victim round: write the working set, then persist the tenant's
/// epoch. Returns the durable-write steps consumed by the victim's calls.
fn victim_round(pool: &PaxPool, victim: &PaxTenant, round: u64) -> u64 {
    let clock = pool.crash_clock().expect("clock");
    let vpm = victim.vpm();
    let before = clock.steps_taken();
    for i in 0..VICTIM_LINES {
        vpm.write_u64(i * LINE_SIZE as u64, round * VICTIM_LINES + i).expect("victim write");
    }
    victim.persist().expect("victim persist");
    clock.steps_taken() - before
}

/// One aggressor burst: 8× the victim's write volume into its own
/// extent, persisting only every fourth round so the backlog stays deep.
fn aggressor_round(aggressor: &PaxTenant, round: u64) -> u64 {
    let vpm = aggressor.vpm();
    let lines = VICTIM_LINES * AGGRESSOR_FACTOR;
    for i in 0..lines {
        vpm.write_u64((i % 2048) * LINE_SIZE as u64, round * lines + i).expect("aggressor write");
    }
    if round % 4 == 3 {
        aggressor.persist().expect("aggressor persist");
    }
    lines
}

/// Runs the victim's full schedule; `noisy` interleaves aggressor bursts
/// before every victim round. Returns (victim steps, aggressor ops).
fn run(noisy: bool) -> (u64, u64) {
    let pool = PaxPool::create(config()).expect("pool");
    let victim = pool.attach(0).expect("victim");
    let aggressor = pool.attach(1).expect("aggressor");
    let mut victim_steps = 0u64;
    let mut aggressor_ops = 0u64;
    for round in 0..ROUNDS {
        if noisy {
            aggressor_ops += aggressor_round(&aggressor, round);
        }
        victim_steps += victim_round(&pool, &victim, round);
    }
    assert_eq!(victim.committed_epoch().expect("epoch"), ROUNDS, "every victim epoch committed");
    (victim_steps, aggressor_ops)
}

fn main() {
    let mut out = BenchOut::from_args("tenants");
    out.line("noisy neighbor: victim steps per op with the aggressor idle vs active\n");

    let victim_ops = ROUNDS * VICTIM_LINES;
    let (solo_steps, _) = run(false);
    let (noisy_steps, aggressor_ops) = run(true);
    // Deterministic "throughput": victim ops per 1k durable-write steps
    // consumed during the victim's own calls.
    let solo_tput = victim_ops as f64 * 1000.0 / solo_steps.max(1) as f64;
    let noisy_tput = victim_ops as f64 * 1000.0 / noisy_steps.max(1) as f64;
    let victim_ratio = noisy_tput / solo_tput;

    out.table(&[
        vec![
            "series".to_string(),
            "victim ops".to_string(),
            "victim steps".to_string(),
            "ops/kstep".to_string(),
        ],
        vec![
            "solo".to_string(),
            victim_ops.to_string(),
            solo_steps.to_string(),
            format!("{solo_tput:.1}"),
        ],
        vec![
            "noisy".to_string(),
            victim_ops.to_string(),
            noisy_steps.to_string(),
            format!("{noisy_tput:.1}"),
        ],
    ]);
    out.push_result(
        Json::obj()
            .field("series", Json::str("solo"))
            .field("victim_ops", Json::U64(victim_ops))
            .field("victim_steps", Json::U64(solo_steps))
            .field("victim_ops_per_kstep", Json::F64(solo_tput)),
    );
    out.push_result(
        Json::obj()
            .field("series", Json::str("noisy"))
            .field("victim_ops", Json::U64(victim_ops))
            .field("victim_steps", Json::U64(noisy_steps))
            .field("victim_ops_per_kstep", Json::F64(noisy_tput))
            .field("aggressor_ops", Json::U64(aggressor_ops)),
    );
    out.push_result(
        Json::obj()
            .field("series", Json::str("isolation"))
            .field("victim_ratio", Json::F64(victim_ratio)),
    );

    out.blank();
    out.line(format!(
        "victim keeps {:.0}% of its solo throughput under an {AGGRESSOR_FACTOR}x-write \
         aggressor (floor: 70%).",
        victim_ratio * 100.0
    ));
    out.line("Per-tenant epochs make the isolation structural: the victim's persist() is a");
    out.line("barrier over its own lanes only, so the aggressor's backlog is never flushed");
    out.line("on the victim's critical path. The residual tax is the bounded idle-step");
    out.line("donation each foreground request grants a backlogged lane.");
    out.finish();
}
