//! T-ycsb: mechanism comparison across application mixes (§5.1).
//!
//! "Our plan is to compare these approaches in detail for a variety of
//! applications. We may find that a combination of the approaches works
//! best." This harness runs the same `PHashMap` code under each
//! crash-consistency mechanism for YCSB-style mixes plus the paper's own
//! two workloads, reporting the mechanism's event-model overhead per
//! operation (latency-profile composition of its counted events).
//!
//! Run: `cargo run --release -p pax-bench --bin ycsb` (add `--json` for
//! machine-readable output)

use libpax::{Heap, MemSpace, PHashMap, PaxConfig, PaxPool};
use pax_baselines::{Costed, DirectPmSpace, HybridSpace, PageFaultSpace, WalSpace};
use pax_bench::{arg_value, BenchOut, Json};
use pax_pm::{LatencyProfile, PoolConfig};
use pax_workloads::{Op, OpMix, WorkloadSpec};

fn pool_config() -> PoolConfig {
    PoolConfig::small().with_data_bytes(32 << 20).with_log_bytes(256 << 20)
}

/// Loads the table, then runs the measured op phase; `measure_from` is
/// called between the two so load-phase events are excluded.
fn run_ops<S: MemSpace>(space: &S, spec: &WorkloadSpec, measure_from: impl FnOnce()) {
    let map: PHashMap<u64, u64, S, Heap<S>> =
        PHashMap::attach(Heap::attach(space.clone()).expect("heap")).expect("map");
    for k in spec.load_keys() {
        map.insert(k, k).expect("load");
    }
    measure_from();
    for op in spec.ops() {
        match op {
            Op::Get(k) => {
                map.get(k).expect("get");
            }
            Op::Insert(k, v) | Op::Update(k, v) => {
                map.insert(k, v).expect("insert");
            }
            Op::Remove(k) => {
                map.remove(k).expect("remove");
            }
        }
    }
}

fn main() {
    let mut out = BenchOut::from_args("ycsb");
    // Shared CLI plumbing (same `--name value` grammar as fig2b).
    let keys: u64 = arg_value("--keys").map_or(2_000, |v| v.parse().expect("bad --keys"));
    let ops: u64 = arg_value("--ops").map_or(6_000, |v| v.parse().expect("bad --ops"));
    out.config("keys", Json::U64(keys));
    out.config("ops", Json::U64(ops));
    let profile = LatencyProfile::c6420();
    let mixes: Vec<(&str, OpMix)> = vec![
        ("fig2a read-only", OpMix::read_only()),
        ("fig2b write-only", OpMix::write_only()),
        ("YCSB-A 50/50", OpMix::ycsb_a()),
        ("YCSB-B 95/5", OpMix::ycsb_b()),
        ("churn", OpMix::churn()),
    ];

    out.line(format!(
        "mechanism overhead [ns/op] — {keys}-key PHashMap, {ops} ops, event counts × \
         cited latencies\n"
    ));
    let mut rows = vec![vec![
        "workload".to_string(),
        "PM-Direct".to_string(),
        "PMDK WAL".to_string(),
        "Page-fault".to_string(),
        "Hybrid".to_string(),
        "PAX".to_string(),
    ]];

    for (name, mix) in mixes {
        let spec = WorkloadSpec {
            keys,
            ops,
            dist: pax_workloads::KeyDistribution::Uniform,
            mix,
            seed: 11,
        };
        let per_op = |total_ns: f64| total_ns / ops as f64;
        // Each mechanism's cost over the op phase only; overhead columns
        // show the delta over PM-Direct (same traffic shape, no
        // consistency machinery).
        use std::cell::Cell;

        let direct = DirectPmSpace::new(32 << 20);
        let base = Cell::new(pax_baselines::CostReport::default());
        run_ops(&direct, &spec, || base.set(direct.costs()));
        let direct_ns = per_op(direct.costs().delta_since(&base.get()).estimate_ns(&profile));

        let wal = WalSpace::create(pool_config()).expect("wal");
        let base = Cell::new(pax_baselines::CostReport::default());
        run_ops(&wal, &spec, || base.set(wal.costs()));
        let wal_ns = per_op(wal.costs().delta_since(&base.get()).estimate_ns(&profile));

        let pf = PageFaultSpace::create(pool_config()).expect("pf");
        let base = Cell::new(pax_baselines::CostReport::default());
        run_ops(&pf, &spec, || {
            pf.persist().expect("persist load epoch");
            base.set(pf.costs());
        });
        pf.persist().expect("persist");
        let pf_ns = per_op(pf.costs().delta_since(&base.get()).estimate_ns(&profile));

        let hy = HybridSpace::create(pool_config()).expect("hybrid");
        let base = Cell::new(pax_baselines::CostReport::default());
        run_ops(&hy, &spec, || {
            hy.persist().expect("persist load epoch");
            base.set(hy.costs());
        });
        hy.persist().expect("persist");
        let hy_ns = per_op(hy.costs().delta_since(&base.get()).estimate_ns(&profile));

        // PAX: device-side work over the op phase (application stalls are
        // zero by construction, §3.2).
        let pax = PaxPool::create(PaxConfig::default().with_pool(pool_config())).expect("pax");
        let vpm = pax.vpm();
        let base = Cell::new(pax_device::DeviceMetrics::default());
        run_ops(&vpm, &spec, || {
            pax.persist().expect("persist load epoch");
            base.set(pax.device_metrics().expect("metrics"));
        });
        pax.persist().expect("persist");
        let m = pax.device_metrics().expect("metrics");
        let b = base.get();
        let pax_ns = per_op(
            (m.pm_reads - b.pm_reads) as f64 * profile.pm.read_ns as f64
                + (((m.log_bytes() + m.writeback_bytes()) - (b.log_bytes() + b.writeback_bytes()))
                    / 64) as f64
                    * profile.pm.write_ns as f64,
        );

        rows.push(vec![
            name.to_string(),
            format!("{direct_ns:.0}"),
            format!("{:.0} (+{:.0})", wal_ns, wal_ns - direct_ns),
            format!("{:.0} (+{:.0})", pf_ns, pf_ns - direct_ns),
            format!("{:.0} (+{:.0})", hy_ns, hy_ns - direct_ns),
            format!("{pax_ns:.0}"),
        ]);
        out.push_result(
            Json::obj()
                .field("workload", Json::str(name))
                .field("pm_direct_ns_per_op", Json::F64(direct_ns))
                .field("pmdk_wal_ns_per_op", Json::F64(wal_ns))
                .field("page_fault_ns_per_op", Json::F64(pf_ns))
                .field("hybrid_ns_per_op", Json::F64(hy_ns))
                .field("pax_ns_per_op", Json::F64(pax_ns)),
        );
    }
    out.table(&rows);
    out.blank();
    out.line("PAX's column is device-side work that overlaps the application (§3.2); the");
    out.line("WAL/page-fault columns include synchronous stalls on the application path.");
    out.line("The hybrid tracks PAX closely while the pure page-fault mechanism pays for");
    out.line("its traps and page images on every write-containing mix — the §5.1 outcome");
    out.line("(\"we may find that a combination of the approaches works best\").");
    out.finish();
}
