//! A-epoch: ablation of persist() frequency (§3.2).
//!
//! "Generally, the application issues persist() after a batch of
//! operations, which works as a form of group commit … Also, if desired,
//! libpax can issue persist() periodically to limit undo log growth."
//!
//! This ablation sweeps the batch size (operations per persist) and
//! reports the trade-off: amortized persist cost per op falls with larger
//! batches while peak log footprint and lost-work-on-crash window grow.
//!
//! Run: `cargo run --release -p pax-bench --bin ablation_epoch` (add
//! `--json` for machine-readable output)

use libpax::{Heap, PHashMap, PaxConfig, PaxPool};
use pax_bench::{BenchOut, Json};
use pax_pm::PoolConfig;

const TOTAL_OPS: u64 = 4_096;

fn main() {
    let mut out = BenchOut::from_args("ablation_epoch");
    out.config("total_ops", Json::U64(TOTAL_OPS));
    out.line(format!("persist() frequency ablation — {TOTAL_OPS} inserts total\n"));
    let mut rows = vec![vec![
        "ops/persist".to_string(),
        "persists".to_string(),
        "snoops total".to_string(),
        "snoops/op".to_string(),
        "peak log entries".to_string(),
        "log bytes/op".to_string(),
    ]];

    let mut last_telemetry = None;
    for batch in [16u64, 64, 256, 1024, 4096] {
        let pool = PaxPool::create(
            PaxConfig::default()
                .with_pool(PoolConfig::small().with_data_bytes(32 << 20).with_log_bytes(64 << 20)),
        )
        .expect("pool");
        let map: PHashMap<u64, u64, _, Heap<_>> =
            PHashMap::attach(Heap::attach(pool.vpm()).expect("heap")).expect("map");

        let mut peak_log = 0u64;
        let mut persists = 0u64;
        let mut entries_at_last_persist = 0u64;
        for k in 0..TOTAL_OPS {
            map.insert(k, k).expect("insert");
            if (k + 1) % batch == 0 {
                let m = pool.device_metrics().expect("metrics");
                // Entries accumulated this epoch before the persist.
                peak_log = peak_log.max(m.undo_entries - entries_at_last_persist);
                pool.persist().expect("persist");
                entries_at_last_persist = m.undo_entries;
                persists += 1;
            }
        }
        let m = pool.device_metrics().expect("metrics");
        rows.push(vec![
            batch.to_string(),
            persists.to_string(),
            m.snoops_sent.to_string(),
            format!("{:.3}", m.snoops_sent as f64 / TOTAL_OPS as f64),
            peak_log.to_string(),
            format!("{:.0}", m.log_bytes() as f64 / TOTAL_OPS as f64),
        ]);
        out.push_result(
            Json::obj()
                .field("ops_per_persist", Json::U64(batch))
                .field("persists", Json::U64(persists))
                .field("snoops_sent", Json::U64(m.snoops_sent))
                .field("snoops_per_op", Json::F64(m.snoops_sent as f64 / TOTAL_OPS as f64))
                .field("peak_log_entries", Json::U64(peak_log))
                .field("log_bytes_per_op", Json::F64(m.log_bytes() as f64 / TOTAL_OPS as f64)),
        );
        last_telemetry = Some(pool.telemetry());
    }
    if let Some(t) = &last_telemetry {
        out.attach_telemetry(t);
    }
    out.table(&rows);

    out.blank();
    out.line("larger batches amortize the persist-time snoop/write-back sweep over more");
    out.line("operations but let the undo log grow (bounded by the log region) and widen");
    out.line("the window of un-persisted work a crash discards — the §3.2 trade-off.");
    out.finish();
}
