//! Figure 2a: AMAT estimates for DRAM, PM, PM via CXL, PM via Enzian.
//!
//! Methodology, as in the paper (§5): run a standard hash-table benchmark
//! performing single-threaded `get()`s with 8 B keys/values under a
//! uniform random key distribution; measure L1/L2/LLC miss rates; compose
//! them with per-level latencies and each scenario's memory service time.
//!
//! Run: `cargo run --release -p pax-bench --bin fig2a` (add `--json` for
//! machine-readable output)

use pax_bench::{bar, measure_fig2a_miss_rates, BenchOut, Json};
use pax_cache::AmatEstimator;
use pax_pm::LatencyProfile;

fn main() {
    let mut out = BenchOut::from_args("fig2a");
    let keys = 20_000; // table ≈ 2× the scaled LLC: LLC misses occur but caches filter most
    let ops = 100_000;
    out.config("keys", Json::U64(keys));
    out.config("ops", Json::U64(ops));
    eprintln!("measuring miss rates: {keys} keys, {ops} uniform-random get()s …");
    let (stats, device) = measure_fig2a_miss_rates(keys, ops);

    out.line("\nFigure 2a — AMAT estimates (ns) servicing LLC misses");
    out.line(format!(
        "measured miss ratios: L1 {:.3}, L2 {:.3}, LLC {:.3} ({} accesses)\n",
        stats.l1.miss_ratio(),
        stats.l2.miss_ratio(),
        stats.llc.miss_ratio(),
        stats.total_accesses()
    ));
    out.config("l1_miss_ratio", Json::F64(stats.l1.miss_ratio()));
    out.config("l2_miss_ratio", Json::F64(stats.l2.miss_ratio()));
    out.config("llc_miss_ratio", Json::F64(stats.llc.miss_ratio()));
    // Snoop accounting from persisting the loaded table: how much of
    // the epoch's host traffic the ownership directory elided.
    out.config("snoops_sent", Json::U64(device.snoops_sent));
    out.config("dir_filtered_snoops", Json::U64(device.dir_filtered_snoops));
    out.config("dir_hits", Json::U64(device.dir_hits));

    let est = AmatEstimator::new(LatencyProfile::c6420());
    let breakdowns = est.figure_2a(&stats);
    let max = breakdowns.iter().map(|b| b.total_ns()).fold(0.0, f64::max);

    let mut rows = vec![vec![
        "scenario".to_string(),
        "AMAT [ns]".to_string(),
        "t_mem [ns]".to_string(),
        "crash-consistent".to_string(),
        String::new(),
    ]];
    for b in &breakdowns {
        rows.push(vec![
            b.kind.label().to_string(),
            format!("{:.1}", b.total_ns()),
            format!("{:.0}", b.t_mem_ns),
            if b.kind.crash_consistent() { "yes" } else { "no" }.to_string(),
            bar(b.total_ns(), max, 28),
        ]);
        out.push_result(
            Json::obj()
                .field("scenario", Json::str(b.kind.label()))
                .field("amat_ns", Json::F64(b.total_ns()))
                .field("t_mem_ns", Json::F64(b.t_mem_ns))
                .field("crash_consistent", Json::Bool(b.kind.crash_consistent())),
        );
    }
    out.table(&rows);

    let pm = breakdowns[1].total_ns();
    let cxl = breakdowns[2].total_ns();
    let enzian = breakdowns[3].total_ns();
    out.blank();
    out.line(format!(
        "PM via CXL adds {:.0}% to AMAT over raw PM (paper: \"may only add 25%\")",
        (cxl - pm) / pm * 100.0
    ));
    out.line(format!(
        "Enzian-based PAX ≈ {:.1}× the AMAT of a CXL-based PAX (paper: \"about a 2× \
         overhead over an eventual CXL-based implementation\")",
        enzian / cxl
    ));
    out.finish();
}
