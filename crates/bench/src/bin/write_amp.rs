//! T-wamp: write amplification — line vs page granularity logging.
//!
//! §1: page-fault approaches suffer "high write amplification since it
//! forces logging at a page granularity (4 KiB on x86) rather than at the
//! specific size of the field being mutated". This harness performs K
//! random 8-byte field updates over a large region under every mechanism
//! and reports PM write traffic per application byte, sweeping spatial
//! locality (fields per page) to find the crossover where paging's
//! amortization catches up (§5.1 "paging may capture spatial locality
//! well for some workloads").
//!
//! Run: `cargo run --release -p pax-bench --bin write_amp` (add `--json`
//! for machine-readable output)

use libpax::{MemSpace, PaxConfig, PaxPool};
use pax_baselines::{Costed, DirectPmSpace, HybridSpace, PageFaultSpace, WalSpace};
use pax_bench::{BenchOut, Json};
use pax_pm::{PoolConfig, PAGE_SIZE};

/// Performs `writes` 8-byte updates, `per_page` of them in each page.
fn run_pattern<S: MemSpace>(space: &S, writes: u64, per_page: u64) {
    for i in 0..writes {
        let page = i / per_page;
        let slot = i % per_page;
        let addr = page * PAGE_SIZE as u64 + slot * 64; // one field per line
        space.write_u64(addr, i).expect("write");
    }
}

fn pool_config() -> PoolConfig {
    PoolConfig::small().with_data_bytes(32 << 20).with_log_bytes(64 << 20)
}

fn main() {
    let mut out = BenchOut::from_args("write_amp");
    let writes = 2_000u64;
    out.config("writes", Json::U64(writes));
    out.line("write amplification: PM bytes written per application byte");
    out.line(format!("{writes} random 8 B field updates, varying fields touched per 4 KiB page\n"));

    let mut rows = vec![vec![
        "fields/page".to_string(),
        "PM-Direct".to_string(),
        "PAX (line log)".to_string(),
        "Hybrid".to_string(),
        "PMDK WAL".to_string(),
        "Page-fault".to_string(),
        "traps(page)".to_string(),
    ]];

    for per_page in [1u64, 4, 16, 64] {
        // PAX: measured from the device's own log/write-back counters.
        let pax_pool =
            PaxPool::create(PaxConfig::default().with_pool(pool_config())).expect("pool");
        let vpm = pax_pool.vpm();
        run_pattern(&vpm, writes, per_page);
        pax_pool.persist().expect("persist");
        let m = pax_pool.device_metrics().expect("metrics");
        let app_bytes = (writes * 8) as f64;
        let pax_amp = (m.log_bytes() + m.writeback_bytes()) as f64 / app_bytes;

        let direct = DirectPmSpace::new(32 << 20);
        run_pattern(&direct, writes, per_page);

        let wal = WalSpace::create(pool_config()).expect("wal");
        run_pattern(&wal, writes, per_page);

        let pf = PageFaultSpace::create(pool_config()).expect("pagefault");
        run_pattern(&pf, writes, per_page);
        pf.persist().expect("persist");

        let hy = HybridSpace::create(pool_config()).expect("hybrid");
        run_pattern(&hy, writes, per_page);
        hy.persist().expect("persist");

        rows.push(vec![
            per_page.to_string(),
            format!("{:.1}×", direct.costs().write_amplification()),
            format!("{pax_amp:.1}×"),
            format!("{:.1}×", hy.costs().write_amplification()),
            format!("{:.1}×", wal.costs().write_amplification()),
            format!("{:.1}×", pf.costs().write_amplification()),
            pf.costs().traps.to_string(),
        ]);
        out.push_result(
            Json::obj()
                .field("fields_per_page", Json::U64(per_page))
                .field("pm_direct_amp", Json::F64(direct.costs().write_amplification()))
                .field("pax_amp", Json::F64(pax_amp))
                .field("hybrid_amp", Json::F64(hy.costs().write_amplification()))
                .field("pmdk_wal_amp", Json::F64(wal.costs().write_amplification()))
                .field("page_fault_amp", Json::F64(pf.costs().write_amplification()))
                .field("page_fault_traps", Json::U64(pf.costs().traps)),
        );
    }
    out.table(&rows);
    out.blank();
    out.line("shape check: page-fault amplification collapses toward the others only as");
    out.line("locality rises (64 fields/page = every line in the page is written), while");
    out.line("PAX stays flat — \"low write amplification\" (§1) without locality assumptions.");
    out.finish();
}
