//! T-trap: interposition cost — page-fault traps vs PAX coherence messages.
//!
//! §1: page-fault interposition "suffers from extreme trap overheads on
//! modern x86 CPUs (more than 1 µs per trap)"; PAX interposes "in
//! hardware with low overhead". This harness runs the same update
//! workload under both mechanisms and charges each its interposition
//! events at the profile costs.
//!
//! Run: `cargo run --release -p pax-bench --bin trap_overhead` (add
//! `--json` for machine-readable output)

use libpax::{MemSpace, PaxConfig, PaxPool};
use pax_baselines::{Costed, HybridSpace, PageFaultSpace};
use pax_bench::{BenchOut, Json};
use pax_pm::{LatencyProfile, PoolConfig, PAGE_SIZE};

fn main() {
    let mut out = BenchOut::from_args("trap_overhead");
    let profile = LatencyProfile::c6420();
    let updates = 4_000u64;
    let pages = 256u64;
    out.config("updates", Json::U64(updates));
    out.config("pages", Json::U64(pages));
    out.line(format!("interposition overhead for {updates} 8 B updates over {pages} pages\n"));

    let config = PoolConfig::small().with_data_bytes(8 << 20).with_log_bytes(64 << 20);

    // Page-fault tracking.
    let pf = PageFaultSpace::create(config).expect("pagefault");
    for i in 0..updates {
        let addr = (i % pages) * PAGE_SIZE as u64 + (i / pages % 8) * 64;
        pf.write_u64(addr, i).expect("write");
    }
    pf.persist().expect("persist");
    let pf_costs = pf.costs();
    let pf_trap_ns = pf_costs.traps as f64 * profile.trap_ns as f64;

    // Hybrid (one remap trap per page, line logging after).
    let hy = HybridSpace::create(config).expect("hybrid");
    for i in 0..updates {
        let addr = (i % pages) * PAGE_SIZE as u64 + (i / pages % 8) * 64;
        hy.write_u64(addr, i).expect("write");
    }
    hy.persist().expect("persist");
    let hy_costs = hy.costs();
    let hy_trap_ns = hy_costs.traps as f64 * profile.trap_ns as f64;

    // PAX: interposition = RdOwn messages at CXL wire cost; no traps.
    let pax = PaxPool::create(PaxConfig::default().with_pool(config)).expect("pool");
    let vpm = pax.vpm();
    for i in 0..updates {
        let addr = (i % pages) * PAGE_SIZE as u64 + (i / pages % 8) * 64;
        vpm.write_u64(addr, i).expect("write");
    }
    pax.persist().expect("persist");
    let m = pax.device_metrics().expect("metrics");
    let pax_interpose_ns = m.rd_own as f64 * profile.cxl_overhead_ns as f64;

    let mut rows = vec![vec![
        "mechanism".to_string(),
        "interposition events".to_string(),
        "cost/event [ns]".to_string(),
        "total [µs]".to_string(),
        "ns per update".to_string(),
    ]];
    for (mechanism, events, event_kind, cost_ns, total_ns) in [
        ("page_fault", pf_costs.traps, "traps", profile.trap_ns, pf_trap_ns),
        ("hybrid", hy_costs.traps, "traps", profile.trap_ns, hy_trap_ns),
        ("pax_cxl", m.rd_own, "RdOwn msgs", profile.cxl_overhead_ns, pax_interpose_ns),
    ] {
        rows.push(vec![
            mechanism.replace('_', "-"),
            format!("{events} {event_kind}"),
            format!("{cost_ns}"),
            format!("{:.1}", total_ns / 1e3),
            format!("{:.0}", total_ns / updates as f64),
        ]);
        out.push_result(
            Json::obj()
                .field("mechanism", Json::str(mechanism))
                .field("interposition_events", Json::U64(events))
                .field("event_kind", Json::str(event_kind))
                .field("cost_per_event_ns", Json::U64(cost_ns))
                .field("total_ns", Json::F64(total_ns))
                .field("ns_per_update", Json::F64(total_ns / updates as f64)),
        );
    }
    out.table(&rows);

    out.blank();
    out.line(format!(
        "paper claim: traps cost >1 µs each (profile: {} ns) while PAX interposes per",
        profile.trap_ns
    ));
    out.line(format!(
        "LLC miss at wire cost ({} ns); paging amortizes per page per epoch, PAX pays",
        profile.cxl_overhead_ns
    ));
    out.line("per first-touch line — compare the per-update columns across mechanisms.");

    // Density sweep: where does amortization flip the winner?
    out.line("\ninterposition ns per update vs spatial density (one epoch):\n");
    let mut rows = vec![vec![
        "updates/page".to_string(),
        "page-fault [ns/update]".to_string(),
        "PAX [ns/update]".to_string(),
        "winner".to_string(),
    ]];
    for per_page in [1u64, 2, 4, 8, 16, 64] {
        let pages = 128u64;
        let updates = pages * per_page;
        // Page faults: one trap per page per epoch.
        let pf_ns = pages as f64 * profile.trap_ns as f64 / updates as f64;
        // PAX: one RdOwn per distinct line; each update hits a distinct
        // line up to 64/page, then re-hits.
        let lines = pages * per_page.min(64);
        let pax_ns = lines as f64 * profile.cxl_overhead_ns as f64 / updates as f64;
        let winner = if pf_ns < pax_ns { "page_fault" } else { "pax" };
        rows.push(vec![
            per_page.to_string(),
            format!("{pf_ns:.0}"),
            format!("{pax_ns:.0}"),
            winner.replace('_', "-"),
        ]);
        out.push_result(
            Json::obj()
                .field("sweep", Json::str("density"))
                .field("updates_per_page", Json::U64(per_page))
                .field("page_fault_ns_per_update", Json::F64(pf_ns))
                .field("pax_ns_per_update", Json::F64(pax_ns))
                .field("winner", Json::str(winner)),
        );
    }
    out.table(&rows);
    out.blank();
    out.line("the crossover sits near trap_ns/cxl_overhead ≈ 14 updates per page: below");
    out.line("it PAX wins outright; above it paging amortizes its trap — §5.1's \"paging");
    out.line("may capture spatial locality well for some workloads\", quantified.");
    out.finish();
}
