//! T-trap: interposition cost — page-fault traps vs PAX coherence messages.
//!
//! §1: page-fault interposition "suffers from extreme trap overheads on
//! modern x86 CPUs (more than 1 µs per trap)"; PAX interposes "in
//! hardware with low overhead". This harness runs the same update
//! workload under both mechanisms and charges each its interposition
//! events at the profile costs.
//!
//! Run: `cargo run --release -p pax-bench --bin trap_overhead`

use libpax::{MemSpace, PaxConfig, PaxPool};
use pax_baselines::{Costed, HybridSpace, PageFaultSpace};
use pax_bench::print_table;
use pax_pm::{LatencyProfile, PoolConfig, PAGE_SIZE};

fn main() {
    let profile = LatencyProfile::c6420();
    let updates = 4_000u64;
    let pages = 256u64;
    println!("interposition overhead for {updates} 8 B updates over {pages} pages\n");

    let config = PoolConfig::small().with_data_bytes(8 << 20).with_log_bytes(64 << 20);

    // Page-fault tracking.
    let pf = PageFaultSpace::create(config).expect("pagefault");
    for i in 0..updates {
        let addr = (i % pages) * PAGE_SIZE as u64 + (i / pages % 8) * 64;
        pf.write_u64(addr, i).expect("write");
    }
    pf.persist().expect("persist");
    let pf_costs = pf.costs();
    let pf_trap_ns = pf_costs.traps as f64 * profile.trap_ns as f64;

    // Hybrid (one remap trap per page, line logging after).
    let hy = HybridSpace::create(config).expect("hybrid");
    for i in 0..updates {
        let addr = (i % pages) * PAGE_SIZE as u64 + (i / pages % 8) * 64;
        hy.write_u64(addr, i).expect("write");
    }
    hy.persist().expect("persist");
    let hy_costs = hy.costs();
    let hy_trap_ns = hy_costs.traps as f64 * profile.trap_ns as f64;

    // PAX: interposition = RdOwn messages at CXL wire cost; no traps.
    let pax = PaxPool::create(PaxConfig::default().with_pool(config)).expect("pool");
    let vpm = pax.vpm();
    for i in 0..updates {
        let addr = (i % pages) * PAGE_SIZE as u64 + (i / pages % 8) * 64;
        vpm.write_u64(addr, i).expect("write");
    }
    pax.persist().expect("persist");
    let m = pax.device_metrics().expect("metrics");
    let pax_interpose_ns = m.rd_own as f64 * profile.cxl_overhead_ns as f64;

    let rows = vec![
        vec![
            "mechanism".to_string(),
            "interposition events".to_string(),
            "cost/event [ns]".to_string(),
            "total [µs]".to_string(),
            "ns per update".to_string(),
        ],
        vec![
            "page-fault".to_string(),
            format!("{} traps", pf_costs.traps),
            format!("{}", profile.trap_ns),
            format!("{:.1}", pf_trap_ns / 1e3),
            format!("{:.0}", pf_trap_ns / updates as f64),
        ],
        vec![
            "hybrid (§5.1)".to_string(),
            format!("{} traps", hy_costs.traps),
            format!("{}", profile.trap_ns),
            format!("{:.1}", hy_trap_ns / 1e3),
            format!("{:.0}", hy_trap_ns / updates as f64),
        ],
        vec![
            "PAX (CXL)".to_string(),
            format!("{} RdOwn msgs", m.rd_own),
            format!("{}", profile.cxl_overhead_ns),
            format!("{:.1}", pax_interpose_ns / 1e3),
            format!("{:.0}", pax_interpose_ns / updates as f64),
        ],
    ];
    print_table(&rows);

    println!();
    println!(
        "paper claim: traps cost >1 µs each (profile: {} ns) while PAX interposes per",
        profile.trap_ns
    );
    println!(
        "LLC miss at wire cost ({} ns); paging amortizes per page per epoch, PAX pays",
        profile.cxl_overhead_ns
    );
    println!("per first-touch line — compare the per-update columns across mechanisms.");

    // Density sweep: where does amortization flip the winner?
    println!("\ninterposition ns per update vs spatial density (one epoch):\n");
    let mut rows = vec![vec![
        "updates/page".to_string(),
        "page-fault [ns/update]".to_string(),
        "PAX [ns/update]".to_string(),
        "winner".to_string(),
    ]];
    for per_page in [1u64, 2, 4, 8, 16, 64] {
        let pages = 128u64;
        let updates = pages * per_page;
        // Page faults: one trap per page per epoch.
        let pf_ns = pages as f64 * profile.trap_ns as f64 / updates as f64;
        // PAX: one RdOwn per distinct line; each update hits a distinct
        // line up to 64/page, then re-hits.
        let lines = pages * per_page.min(64);
        let pax_ns = lines as f64 * profile.cxl_overhead_ns as f64 / updates as f64;
        rows.push(vec![
            per_page.to_string(),
            format!("{pf_ns:.0}"),
            format!("{pax_ns:.0}"),
            if pf_ns < pax_ns { "page-fault" } else { "PAX" }.to_string(),
        ]);
    }
    print_table(&rows);
    println!();
    println!("the crossover sits near trap_ns/cxl_overhead ≈ 14 updates per page: below");
    println!("it PAX wins outright; above it paging amortizes its trap — §5.1's \"paging");
    println!("may capture spatial locality well for some workloads\", quantified.");
}
