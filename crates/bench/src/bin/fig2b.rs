//! Figure 2b: write-only hash-table throughput vs thread count.
//!
//! The paper runs a volatile TBB hash table in DRAM, on PM directly, and
//! PMDK's TBB-based persistent table, on a 32-core machine. Here the
//! per-op event profile is *measured* from the functional simulation and
//! the scaling is produced by the `pax-exec` discrete-event model (this
//! host may have a single core; see DESIGN.md §2). The PAX series is the
//! paper's §5 projection: asynchronous logging ≈ PM-Direct performance.
//!
//! Run: `cargo run --release -p pax-bench --bin fig2b` (add `--json` for
//! machine-readable output). `--measured` switches to the *real-thread*
//! series: N OS threads (`--threads 1,2,4,8`) storing concurrently
//! through the `Send + Sync` `PaxPool`, timed on the wall clock — the
//! shard-parallel engine measured, not modelled.

use pax_bench::{
    arg_value, flag, measure_insert_profile, measure_threaded_store_mops, thread_series, BenchOut,
    Json,
};
use pax_exec::{Backend, MachineParams};
use pax_pm::{LatencyProfile, Platform};

/// The measured real-thread series (`--measured`): wall-clock Mops per
/// thread count at a fixed shard interleave, plus the scaling ratio the
/// CI ratchet enforces.
fn run_measured() {
    let mut out = BenchOut::from_args("fig2b_measured");
    let threads = thread_series(&[1, 2, 4, 8]);
    let shards: usize = arg_value("--shards").map_or(4, |v| v.parse().expect("bad --shards"));
    let ops: u64 = arg_value("--ops").map_or(200_000, |v| v.parse().expect("bad --ops"));
    // The ratchet gates the parallel-scaling bar on this: a host without
    // real cores cannot exhibit real speedup, only graceful degradation.
    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    out.config("shards", Json::U64(shards as u64));
    out.config("ops_per_thread", Json::U64(ops));
    out.config("host_cores", Json::U64(host_cores as u64));
    out.line(format!(
        "\nFigure 2b (measured) — wall-clock store throughput [Mops], S={shards}, \
         {ops} ops/thread"
    ));
    let mut rows = vec![vec!["threads".to_string(), "mops".to_string(), "vs 1".to_string()]];
    let mut base = None;
    for &t in &threads {
        eprintln!("measuring {t} thread(s) …");
        let mops = measure_threaded_store_mops(t, shards, ops);
        let b = *base.get_or_insert(mops);
        let scaling = mops / b;
        rows.push(vec![t.to_string(), format!("{mops:.2}"), format!("{scaling:.2}×")]);
        out.push_result(
            Json::obj()
                .field("threads", Json::U64(t as u64))
                .field("shards", Json::U64(shards as u64))
                .field("mops", Json::F64(mops))
                .field("scaling_vs_1", Json::F64(scaling)),
        );
    }
    out.table(&rows);
    out.finish();
}

fn main() {
    if flag("--measured") {
        run_measured();
        return;
    }
    let mut out = BenchOut::from_args("fig2b");
    eprintln!("measuring per-op insert profile from the functional simulation …");
    let profile = measure_insert_profile(20_000, 40_000);
    eprintln!(
        "measured: {:.2} misses/op, {:.2} stores/op",
        profile.misses_per_op, profile.stores_per_op
    );
    out.config("misses_per_op", Json::F64(profile.misses_per_op));
    out.config("stores_per_op", Json::F64(profile.stores_per_op));

    let latency = LatencyProfile::c6420();
    let machine = MachineParams::paper();
    let sharded = MachineParams { device_shards: 4, ..MachineParams::paper() };
    let slow_tick = MachineParams { device_tick_ns: 100, ..MachineParams::paper() };
    let threads = thread_series(&[1, 8, 16, 24, 32]);
    // (series label, backend, machine) — the S=4 row reruns PAX (CXL) on
    // a 4-shard device (banked pipelines + log engines, cf.
    // `DeviceConfig::with_shards`); the tick=100ns row reruns it with a
    // free-running scheduler clocked 4× slower than the log engine, so
    // sustained stores queue behind the tick period.
    let series: Vec<(String, Backend, MachineParams)> = vec![
        (Backend::Dram.label().to_string(), Backend::Dram, machine),
        (Backend::PmDirect.label().to_string(), Backend::PmDirect, machine),
        (Backend::Pmdk.label().to_string(), Backend::Pmdk, machine),
        (Backend::Pax(Platform::Cxl).label().to_string(), Backend::Pax(Platform::Cxl), machine),
        ("PAX (CXL) S=4".to_string(), Backend::Pax(Platform::Cxl), sharded),
        ("PAX (CXL) tick=100ns".to_string(), Backend::Pax(Platform::Cxl), slow_tick),
        (
            Backend::Pax(Platform::Enzian).label().to_string(),
            Backend::Pax(Platform::Enzian),
            machine,
        ),
    ];

    out.line("\nFigure 2b — write-only throughput [Mops] vs threads");
    let mut rows = vec![{
        let mut h = vec!["threads".to_string()];
        h.extend(series.iter().map(|(label, _, _)| label.clone()));
        h
    }];
    let mut results = vec![vec![0.0f64; series.len()]; threads.len()];
    for (ti, &t) in threads.iter().enumerate() {
        let mut row = vec![t.to_string()];
        for (si, (label, b, m)) in series.iter().enumerate() {
            let mops = b.throughput(t, 4_000, &latency, m, &profile).mops();
            results[ti][si] = mops;
            row.push(format!("{mops:.2}"));
            out.push_result(
                Json::obj()
                    .field("threads", Json::U64(t as u64))
                    .field("backend", Json::str(label))
                    .field("shards", Json::U64(m.device_shards as u64))
                    .field("mops", Json::F64(mops)),
            );
        }
        rows.push(row);
    }
    out.table(&rows);

    let last = threads.len() - 1;
    out.blank();
    out.line(format!(
        "at 32 threads: PM-Direct/PMDK = {:.2}× (paper: \"≈2× better\")",
        results[last][1] / results[last][2]
    ));
    out.line(format!(
        "at 32 threads: PAX(CXL)/PM-Direct = {:.2}× (paper: \"match or beat PM Direct\")",
        results[last][3] / results[last][1]
    ));
    out.line(format!(
        "at 32 threads: PAX(CXL) S=4/S=1 = {:.2}× (shard parallelism; bar: ≥ 1.5×)",
        results[last][4] / results[last][3]
    ));
    out.line(format!(
        "at 32 threads: PAX(CXL) tick=100ns/tick=25ns = {:.2}× (scheduler as the bottleneck)",
        results[last][5] / results[last][3]
    ));
    out.line(format!(
        "at 32 threads: DRAM/PM-Direct = {:.2}× (volatile headroom)",
        results[last][0] / results[last][1]
    ));
    out.finish();
}
