//! Allocator engine comparison: llfree-style bitmap vs first-fit heap.
//!
//! Three series, one artifact (`BENCH_allocbench.json`):
//!
//! * **Throughput** — N OS threads churn a slot table of mixed-size
//!   allocations (alloc on an empty slot, free on a full one) against a
//!   shared space. The `bitmap` mode runs [`BitmapAlloc`] over the
//!   striped multicore space with one per-core handle per thread; the
//!   `heap` mode runs the serial first-fit [`Heap`](libpax::Heap) as the
//!   single-thread baseline it is (its free list has one lock and O(list)
//!   frees, so it only appears at `threads = 1`).
//! * **Fragment** — an adversarial layout: carpet the pool with
//!   single-frame allocations, free every other one so *every* tree is
//!   partial (recorded as `frag_permille_peak`/`frag_permille_end` in
//!   the row), then churn mixed sizes over the holes. Exercises the
//!   partial-first reserve policy's worst case and keeps the
//!   partial-tree permille gauge honest (> 0‰ by construction).
//! * **Recovery** — `attach` IS recovery for the bitmap allocator: the
//!   series times the full attach-time bitmap scan at growing pool sizes
//!   with a quarter of the frames live, recording `scan_steps` so CI can
//!   hold the scan to linear in pool frames.
//!
//! The CI ratchet enforces per-(threads, mode) ops/s floors, the
//! 1→4-thread scaling bar on capable hosts, and the recovery linearity
//! bound.
//!
//! Run: `cargo run --release -p pax-bench --bin allocbench` (add
//! `--json`; `--threads 1,2,4` and `--ops N` to resize).

use std::time::Instant;

use libpax::{Heap, MemSpace, PmAllocator, StripedSpace, VolatileSpace};
use pax_alloc::BitmapAlloc;
use pax_bench::{arg_value, thread_series, BenchOut, Json};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Live-allocation slots per worker thread.
const SLOTS: usize = 256;
/// Allocation sizes span one frame up to a handful of frames.
const MIN_BYTES: u64 = 16;
const MAX_BYTES: u64 = 256;
/// Shared-space capacity for the throughput storm.
const POOL_BYTES: usize = 32 << 20;

/// One worker's slot churn: every op is an alloc (empty slot) or a free
/// (occupied slot), then the table is drained so repeated runs see the
/// same starting state.
fn churn<S: MemSpace, A: PmAllocator<S>>(a: &A, ops: u64, seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut slots: Vec<Option<(u64, u64)>> = vec![None; SLOTS];
    for _ in 0..ops {
        let i = rng.gen_range(0..SLOTS);
        match slots[i].take() {
            Some((addr, len)) => a.free(addr, len).expect("free of a live slot"),
            None => {
                let len = rng.gen_range(MIN_BYTES..MAX_BYTES + 1);
                slots[i] = Some((a.alloc(len).expect("pool sized for the slot table"), len));
            }
        }
    }
    for slot in slots.into_iter().flatten() {
        a.free(slot.0, slot.1).expect("drain");
    }
}

/// Timed bitmap storm: `threads` workers, each on its own per-core
/// handle of one shared allocator. Returns (Mops, telemetry fields).
fn measure_bitmap(threads: usize, ops_per_thread: u64) -> (f64, Vec<(&'static str, Json)>) {
    let alloc = BitmapAlloc::attach_with_cores(StripedSpace::new(POOL_BYTES), threads)
        .expect("striped space formats");
    let start = Instant::now();
    std::thread::scope(|s| {
        for t in 0..threads {
            let h = alloc.for_core(t);
            s.spawn(move || churn(&h, ops_per_thread, 0x5EED + t as u64));
        }
    });
    let mops = (threads as u64 * ops_per_thread) as f64 / start.elapsed().as_secs_f64() / 1e6;
    let snap = alloc.metrics_snapshot();
    let telemetry = vec![
        ("fast_hits", Json::U64(snap.counter("alloc_fast_hits"))),
        ("tree_steals", Json::U64(snap.counter("alloc_tree_steals"))),
        ("scan_frames", Json::U64(snap.counter("alloc_scan_frames"))),
        ("frag_permille", Json::U64(alloc.fragmentation_permille())),
    ];
    (mops, telemetry)
}

/// Timed heap baseline: the first-fit free list is serial by design, so
/// this only runs single-threaded — and on a fraction of the op budget,
/// because its O(free-list) frees make the full storm take minutes. The
/// reported rate is honest; only the sample is shorter.
fn measure_heap(ops: u64) -> (u64, f64) {
    let ops = (ops / 16).max(1_000);
    let heap = Heap::attach(VolatileSpace::new(POOL_BYTES)).expect("heap formats");
    let start = Instant::now();
    churn(&heap, ops, 0x5EED);
    (ops, ops as f64 / start.elapsed().as_secs_f64() / 1e6)
}

/// Adversarial fragmentation: carpet the pool with single-frame
/// allocations, then free every other one, leaving each tree
/// Swiss-cheesed (free != 0 and free != tree capacity, i.e. *partial* in
/// the [`fragmentation_permille`](BitmapAlloc::fragmentation_permille)
/// sense). The timed churn then runs mixed sizes over that hostile
/// layout, so multi-frame requests must skip holes and steal across
/// partial trees instead of bump-allocating from empty ones. Returns
/// (Mops, peak partial-tree permille, end permille, telemetry).
fn measure_fragmentation(ops: u64) -> (u64, f64, u64, u64, Vec<(&'static str, Json)>) {
    // The Swiss-cheese layout defeats the partial-first reserve policy on
    // purpose: multi-frame requests scan whole partial trees before
    // falling back to the empty half of the pool. That makes each op
    // orders of magnitude costlier than the friendly churn, so run a
    // shorter honest sample (same trick as the heap baseline).
    let ops = (ops / 8).max(1_000);
    let alloc = BitmapAlloc::attach(StripedSpace::new(POOL_BYTES)).expect("striped space formats");
    let frame = pax_alloc::layout::FRAME_BYTES;
    // Phase A: pepper ~half the frames with live single-frame allocs.
    let carpet = alloc.geometry().frames / 2;
    let mut live: Vec<u64> = (0..carpet)
        .map(|_| alloc.alloc(frame).expect("carpet fill fits in half the pool"))
        .collect();
    // Phase B: free alternate allocations — every tree ends up partial.
    let mut keep = false;
    live.retain(|&addr| {
        keep = !keep;
        if !keep {
            alloc.free(addr, frame).expect("free of carpet frame");
        }
        keep
    });
    let frag_peak = alloc.fragmentation_permille();
    // Phase C: the measured churn, over the fragmented layout.
    let start = Instant::now();
    churn(&alloc, ops, 0xF2A6);
    let mops = ops as f64 / start.elapsed().as_secs_f64() / 1e6;
    let frag_end = alloc.fragmentation_permille();
    let frag_ops = ops;
    for addr in live {
        alloc.free(addr, frame).expect("drain carpet");
    }
    let snap = alloc.metrics_snapshot();
    let telemetry = vec![
        ("fast_hits", Json::U64(snap.counter("alloc_fast_hits"))),
        ("tree_steals", Json::U64(snap.counter("alloc_tree_steals"))),
        ("scan_frames", Json::U64(snap.counter("alloc_scan_frames"))),
    ];
    (frag_ops, mops, frag_peak, frag_end, telemetry)
}

/// Recovery-as-construction cost: fill a pool a quarter full, then time
/// a cold `attach` (the whole recovery path) against it. Returns
/// (pool_frames, live_frames, scan_steps, scan_ns).
fn measure_recovery(pool_bytes: usize) -> (u64, u64, u64, u64) {
    let space = VolatileSpace::new(pool_bytes);
    let warm = BitmapAlloc::attach(space.clone()).expect("format");
    let target = warm.geometry().frames / 4;
    while warm.live_frames() < target {
        warm.alloc(MAX_BYTES).expect("quarter fill fits");
    }
    drop(warm);
    let start = Instant::now();
    let cold = BitmapAlloc::attach(space).expect("recovery attach");
    let scan_ns = start.elapsed().as_nanos() as u64;
    let stats = cold.recovery_stats();
    (cold.geometry().frames, stats.live_frames, stats.scan_steps, scan_ns)
}

fn main() {
    let mut out = BenchOut::from_args("allocbench");
    let threads = thread_series(&[1, 2, 4]);
    let ops: u64 = arg_value("--ops").map_or(120_000, |v| v.parse().expect("bad --ops"));
    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    out.config("ops_per_thread", Json::U64(ops));
    out.config("host_cores", Json::U64(host_cores as u64));
    out.config("pool_bytes", Json::U64(POOL_BYTES as u64));

    out.line(format!(
        "\nAllocator slot churn [Mops] — bitmap (per-core trees) vs first-fit \
         heap, {ops} ops/thread"
    ));
    let mut rows = vec![vec![
        "threads".to_string(),
        "bitmap".to_string(),
        "bitmap vs 1".to_string(),
        "heap".to_string(),
    ]];
    let mut bitmap_base = None;
    for &t in &threads {
        eprintln!("measuring {t} thread(s) …");
        let (bitmap, telemetry) = measure_bitmap(t, ops);
        let base = *bitmap_base.get_or_insert(bitmap);
        let scaling = bitmap / base;
        let mut row = Json::obj()
            .field("threads", Json::U64(t as u64))
            .field("mode", Json::str("bitmap"))
            .field("mops", Json::F64(bitmap))
            .field("scaling_vs_1", Json::F64(scaling));
        for (key, value) in telemetry {
            row = row.field(key, value);
        }
        out.push_result(row);
        let heap = if t == 1 {
            let (heap_ops, mops) = measure_heap(ops);
            out.push_result(
                Json::obj()
                    .field("threads", Json::U64(1))
                    .field("mode", Json::str("heap"))
                    .field("ops", Json::U64(heap_ops))
                    .field("mops", Json::F64(mops))
                    .field("scaling_vs_1", Json::F64(1.0)),
            );
            format!("{mops:.3}")
        } else {
            "—".to_string()
        };
        rows.push(vec![t.to_string(), format!("{bitmap:.2}"), format!("{scaling:.2}×"), heap]);
    }
    out.table(&rows);

    out.line("\nAdversarial fragmentation (alternate-free carpet, then mixed-size churn)");
    eprintln!("fragmentation storm …");
    let (frag_ops, frag_mops, frag_peak, frag_end, frag_telemetry) = measure_fragmentation(ops);
    out.table(&[
        vec!["Mops".to_string(), "partial ‰ peak".to_string(), "partial ‰ end".to_string()],
        vec![format!("{frag_mops:.3}"), frag_peak.to_string(), frag_end.to_string()],
    ]);
    let mut frag_row = Json::obj()
        .field("series", Json::str("fragment"))
        .field("threads", Json::U64(1))
        .field("ops", Json::U64(frag_ops))
        .field("mops", Json::F64(frag_mops))
        .field("frag_permille_peak", Json::U64(frag_peak))
        .field("frag_permille_end", Json::U64(frag_end));
    for (key, value) in frag_telemetry {
        frag_row = frag_row.field(key, value);
    }
    out.push_result(frag_row);

    out.line("\nRecovery scan (attach == recover), quarter-full pools");
    let mut rrows = vec![vec!["pool".to_string(), "frames".to_string(), "scan µs".to_string()]];
    for pool_bytes in [8usize << 20, 32 << 20, 128 << 20] {
        eprintln!("recovery scan at {} MiB …", pool_bytes >> 20);
        let (pool_frames, live_frames, scan_steps, scan_ns) = measure_recovery(pool_bytes);
        rrows.push(vec![
            format!("{} MiB", pool_bytes >> 20),
            pool_frames.to_string(),
            format!("{:.1}", scan_ns as f64 / 1e3),
        ]);
        out.push_result(
            Json::obj()
                .field("series", Json::str("recovery"))
                .field("pool_bytes", Json::U64(pool_bytes as u64))
                .field("pool_frames", Json::U64(pool_frames))
                .field("live_frames", Json::U64(live_frames))
                .field("scan_steps", Json::U64(scan_steps))
                .field("scan_ns", Json::U64(scan_ns)),
        );
    }
    out.table(&rrows);
    out.finish();
}
