//! A-persistency: persistency-model ablation on the flush-heavy mix.
//!
//! One seeded write stream runs at [`OpMix::flush_heavy`]'s persist
//! cadence (a barrier every 8 stores — transaction-log rhythm) under
//! each [`PersistencyModel`]:
//!
//! * **strict** — every store is its own durable epoch; the pool
//!   persists synchronously behind each completed line store.
//! * **epoch** — the default: `persist()` snoops, writes back, and
//!   commits before returning.
//! * **buffered2 / buffered4** — `persist()` queues the close and
//!   returns; up to K epochs retire in order off the caller's path.
//!
//! Reported per series: the deterministic throughput proxy (ops per 1k
//! durable-write steps), persist completions per op, and the modeled
//! caller-visible close cost under the paper's `MachineParams` using
//! the run's *measured* snoops and write-backs per epoch. CI enforces
//! the headline via `ci/bench_ratchet.py`: `buffered4` must clear
//! 1.3x the `strict` ops/kstep, and no model's throughput may regress
//! more than 10% run-over-run.
//!
//! Run: `cargo run --release -p pax-bench --bin persistency` (add
//! `--json` for machine-readable output)

use libpax::{MemSpace, PaxConfig, PaxPool, PersistencyModel};
use pax_bench::{BenchOut, Json};
use pax_exec::MachineParams;
use pax_pm::{PoolConfig, LINE_SIZE};
use pax_workloads::OpMix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Stores in the stream (96 epochs at the flush-heavy cadence).
const OPS: u64 = 768;
/// Working-set lines the stream cycles over.
const SPAN_LINES: u64 = 96;
const SEED: u64 = 7;

const MODELS: [PersistencyModel; 4] = [
    PersistencyModel::Strict,
    PersistencyModel::Epoch,
    PersistencyModel::buffered(2),
    PersistencyModel::buffered(4),
];

struct RunStats {
    steps: u64,
    persists: u64,
    snoops: u64,
    writebacks: u64,
}

fn run(model: PersistencyModel, mix: OpMix) -> RunStats {
    let config = PaxConfig::default()
        .with_pool(PoolConfig::small().with_data_bytes(4 << 20).with_log_bytes(32 << 20))
        .with_persistency(model);
    let pool = PaxPool::create(config).expect("pool");
    let clock = pool.crash_clock().expect("clock");
    let vpm = pool.vpm();
    let mut rng = StdRng::seed_from_u64(SEED);

    let before = clock.steps_taken();
    for i in 0..OPS {
        let line = rng.gen_range(0..SPAN_LINES);
        vpm.write_u64(line * LINE_SIZE as u64, rng.gen()).expect("write");
        if mix.persist_every != 0 && (i + 1) % mix.persist_every as u64 == 0 {
            pool.persist().expect("persist");
        }
    }
    // Settle: a buffered queue still holding closes retires them here,
    // so every model pays for full durability inside the measured window.
    pool.persist_wait().expect("persist_wait");
    let m = pool.device_metrics().expect("metrics");
    RunStats {
        steps: clock.steps_taken() - before,
        persists: m.persists,
        snoops: m.snoops_sent,
        writebacks: m.device_writebacks,
    }
}

fn main() {
    let mix = OpMix::flush_heavy();
    let machine = MachineParams::paper();
    let mut out = BenchOut::from_args("persistency");
    out.config("ops", Json::U64(OPS));
    out.config("span_lines", Json::U64(SPAN_LINES));
    out.config("persist_every", Json::U64(mix.persist_every as u64));
    out.line(format!(
        "persistency-model ablation: {OPS} stores over {SPAN_LINES} lines, \
         flush-heavy cadence (persist every {})\n",
        mix.persist_every
    ));

    let mut rows = vec![vec![
        "series".to_string(),
        "steps".to_string(),
        "ops/kstep".to_string(),
        "persists".to_string(),
        "persists/op".to_string(),
        "modeled close ns".to_string(),
    ]];
    let mut kstep = Vec::new();
    for model in MODELS {
        let s = run(model, mix);
        let ops_per_kstep = OPS as f64 * 1000.0 / s.steps.max(1) as f64;
        let persists_per_op = s.persists as f64 / OPS as f64;
        // Price the caller-visible close with the run's own measured
        // per-epoch snoop and write-back counts.
        let epochs = s.persists.max(1);
        let modeled_close_ns =
            machine.epoch_close_visible_ns(model, s.snoops / epochs, s.writebacks / epochs);
        rows.push(vec![
            model.label(),
            s.steps.to_string(),
            format!("{ops_per_kstep:.1}"),
            s.persists.to_string(),
            format!("{persists_per_op:.3}"),
            modeled_close_ns.to_string(),
        ]);
        out.push_result(
            Json::obj()
                .field("series", Json::str(model.label()))
                .field("ops", Json::U64(OPS))
                .field("steps", Json::U64(s.steps))
                .field("ops_per_kstep", Json::F64(ops_per_kstep))
                .field("persists", Json::U64(s.persists))
                .field("persists_per_op", Json::F64(persists_per_op))
                .field("snoops_sent", Json::U64(s.snoops))
                .field("device_writebacks", Json::U64(s.writebacks))
                .field("modeled_close_ns", Json::U64(modeled_close_ns)),
        );
        kstep.push((model.label(), ops_per_kstep));
    }
    out.table(&rows);

    let strict = kstep[0].1;
    let buffered4 = kstep[kstep.len() - 1].1;
    let speedup = buffered4 / strict.max(f64::EPSILON);
    out.push_result(
        Json::obj()
            .field("series", Json::str("headline"))
            .field("buffered4_vs_strict", Json::F64(speedup)),
    );

    out.blank();
    out.line(format!(
        "buffered4 sustains {speedup:.2}x the strict ops/kstep on the flush-heavy \
         mix (CI bar: >= 1.3x)."
    ));
    out.line("Strict pays a full snoop sweep + commit behind every store; epoch");
    out.line("amortises that over the barrier interval; buffered-epoch moves the");
    out.line("sweep off the caller's path entirely and retires closes in order.");
    out.finish();
}
