//! Same-lane HBM store-hit contention microbench.
//!
//! N OS threads issue `RdOwn`s against ONE device lane whose working set
//! is HBM-resident — the worst case the concurrent set index exists for:
//! before it, every store on a lane serialized on the lane's
//! `Mutex<DeviceShard>` even when the line was already cached and logged.
//! The bench times the full device store path (presence probe, epoch-log
//! dedup, directory note) in both engines:
//!
//! - `lockfree`: the default concurrent set index — per-set spinlock
//!   probes, atomic telemetry, no lane-mutex acquisition on a warm hit.
//! - `locked`: `DeviceConfig::with_locked_hbm`, the mutex-era engine
//!   kept as the CI differential baseline.
//!
//! The CI ratchet enforces the point of the change: on a ≥4-core host
//! the lock-free engine's 1→4-thread scaling must clear a bar the mutex
//! engine structurally cannot.
//!
//! Run: `cargo run --release -p pax-bench --bin hbmstore` (add `--json`
//! for machine-readable output; `--threads 1,2,4` and `--ops N` to
//! resize).

use std::time::Instant;

use pax_bench::{arg_value, thread_series, BenchOut, Json};
use pax_cache::HomeAgent;
use pax_device::{DeviceConfig, PaxDevice};
use pax_pm::{LineAddr, PmPool, PoolConfig};

/// Distinct lines in the warmed same-lane working set. Small enough to
/// sit far below the default HBM slice, large enough to spread across
/// sets so the per-set spinlocks actually shard.
const LINES: u64 = 64;

/// One timed same-lane store storm; returns wall-clock Mops.
fn measure(threads: usize, ops_per_thread: u64, locked: bool) -> f64 {
    let pool = PmPool::create(PoolConfig::small()).unwrap();
    // One shard = every address lands on one lane. Background pumping is
    // deferred past the run so the measured loop is the pure store path.
    let config = if locked {
        DeviceConfig::default().with_locked_hbm()
    } else {
        DeviceConfig::default().with_lockfree_hbm()
    };
    let device =
        PaxDevice::open(pool, config.with_shards(1).with_log_pump_interval(usize::MAX)).unwrap();
    // Warm: first touch logs each line and makes it HBM-resident, so the
    // timed loop below is all hits.
    {
        let mut home = &device;
        for i in 0..LINES {
            home.read_own(LineAddr(i)).unwrap();
        }
    }
    let total = threads as u64 * ops_per_thread;
    let start = Instant::now();
    std::thread::scope(|s| {
        for t in 0..threads {
            let device = &device;
            s.spawn(move || {
                let mut home = device;
                // Offset start points so threads do not march in lockstep
                // over the same set.
                for i in 0..ops_per_thread {
                    home.read_own(LineAddr((t as u64 * 17 + i) % LINES)).unwrap();
                }
            });
        }
    });
    total as f64 / start.elapsed().as_secs_f64() / 1e6
}

fn main() {
    let mut out = BenchOut::from_args("hbmstore");
    let threads = thread_series(&[1, 2, 4]);
    let ops: u64 = arg_value("--ops").map_or(200_000, |v| v.parse().expect("bad --ops"));
    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    out.config("ops_per_thread", Json::U64(ops));
    out.config("lines", Json::U64(LINES));
    out.config("host_cores", Json::U64(host_cores as u64));

    out.line(format!(
        "\nSame-lane HBM store hits [Mops] — concurrent set index vs lane-mutex engine, \
         {ops} ops/thread"
    ));
    let mut rows = vec![vec![
        "threads".to_string(),
        "lockfree".to_string(),
        "lockfree vs 1".to_string(),
        "locked".to_string(),
        "locked vs 1".to_string(),
    ]];
    let (mut free_base, mut locked_base) = (None, None);
    for &t in &threads {
        eprintln!("measuring {t} thread(s) …");
        let free = measure(t, ops, false);
        let locked = measure(t, ops, true);
        let fb = *free_base.get_or_insert(free);
        let lb = *locked_base.get_or_insert(locked);
        let (free_scaling, locked_scaling) = (free / fb, locked / lb);
        rows.push(vec![
            t.to_string(),
            format!("{free:.2}"),
            format!("{free_scaling:.2}×"),
            format!("{locked:.2}"),
            format!("{locked_scaling:.2}×"),
        ]);
        for (mode, mops, scaling) in
            [("lockfree", free, free_scaling), ("locked", locked, locked_scaling)]
        {
            out.push_result(
                Json::obj()
                    .field("threads", Json::U64(t as u64))
                    .field("mode", Json::str(mode))
                    .field("mops", Json::F64(mops))
                    .field("scaling_vs_1", Json::F64(scaling)),
            );
        }
    }
    out.table(&rows);
    out.finish();
}
