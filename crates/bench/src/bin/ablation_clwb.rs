//! A-clwb: snoop-based persist vs CLWB-style forced flushes (§4).
//!
//! "We plan to generate CXL device-to-host RdShared messages to force the
//! host CPU to downgrade (and forward the current values of) its dirty
//! cache lines before write back to PM. This is more efficient than
//! forcing CPUs to issue CLWBs which are serialized, consume cycles, and
//! cause complete evictions of cache lines and future cache misses."
//!
//! Both variants are implemented on the same device; this harness runs
//! identical epochs and measures what happens to the host cache *after*
//! the persist: the snoop path leaves lines resident in shared state
//! (re-reads hit), the CLWB path evicts them (re-reads miss and travel to
//! the device again).
//!
//! Run: `cargo run --release -p pax-bench --bin ablation_clwb` (add
//! `--json` for machine-readable output)

use pax_bench::{BenchOut, Json};
use pax_cache::{CacheConfig, CoherentCache};
use pax_device::{DeviceConfig, PaxDevice};
use pax_pm::{CacheLine, LatencyProfile, LineAddr, PmPool, PoolConfig};

const LINES: u64 = 256;

fn run(clwb: bool) -> (u64, u64, f64) {
    let pool =
        PmPool::create(PoolConfig::small().with_data_bytes(8 << 20).with_log_bytes(32 << 20))
            .expect("pool");
    let mut device = PaxDevice::open(pool, DeviceConfig::default()).expect("device");
    let mut cache = CoherentCache::new(CacheConfig::tiny(64 << 10, 8));

    for i in 0..LINES {
        cache.write(LineAddr(i), CacheLine::filled(i as u8), &mut device).expect("write");
    }
    if clwb {
        device.persist_clwb(&mut cache).expect("persist");
    } else {
        device.persist(&mut cache).expect("persist");
    }

    // The epoch's working set is re-read after the persist.
    let before = cache.stats();
    for i in 0..LINES {
        cache.read(LineAddr(i), &mut device).expect("read");
    }
    let after = cache.stats();
    let hits = after.read_hits - before.read_hits;
    let misses = after.read_misses - before.read_misses;

    // Extra AMAT the re-read pays, charged at CXL interposition + PM/HBM.
    let p = LatencyProfile::c6420();
    let miss_ns = (p.cxl_overhead_ns + p.hbm_ns) as f64; // device HBM still warm
    let extra_ns = misses as f64 * miss_ns / LINES as f64;
    (hits, misses, extra_ns)
}

fn main() {
    let mut out = BenchOut::from_args("ablation_clwb");
    out.config("epoch_lines", Json::U64(LINES));
    out.line(format!(
        "persist flush mechanism vs post-persist cache warmth ({LINES}-line epoch)\n"
    ));
    let (snoop_hits, snoop_misses, snoop_ns) = run(false);
    let (clwb_hits, clwb_misses, clwb_ns) = run(true);

    let rows = vec![
        vec![
            "flush mechanism".to_string(),
            "re-read hits".to_string(),
            "re-read misses".to_string(),
            "extra ns/line after persist".to_string(),
        ],
        vec![
            "SnpData downgrade (PAX plan)".to_string(),
            snoop_hits.to_string(),
            snoop_misses.to_string(),
            format!("{snoop_ns:.0}"),
        ],
        vec![
            "CLWB-style eviction".to_string(),
            clwb_hits.to_string(),
            clwb_misses.to_string(),
            format!("{clwb_ns:.0}"),
        ],
    ];
    out.table(&rows);
    for (mechanism, hits, misses, ns) in [
        ("snpdata_downgrade", snoop_hits, snoop_misses, snoop_ns),
        ("clwb_eviction", clwb_hits, clwb_misses, clwb_ns),
    ] {
        out.push_result(
            Json::obj()
                .field("mechanism", Json::str(mechanism))
                .field("reread_hits", Json::U64(hits))
                .field("reread_misses", Json::U64(misses))
                .field("extra_ns_per_line", Json::F64(ns)),
        );
    }
    out.blank();
    out.line("the snoop-based protocol downgrades lines to shared — the working set stays");
    out.line("cached across persist() and re-reads hit. CLWB-style flushes evict, so every");
    out.line("re-read pays a device round trip: the \"complete evictions … and future cache");
    out.line("misses\" §4 predicts. (Future Intel CPUs that downgrade on CLWB would close");
    out.line("the gap — which is exactly the paper's parenthetical.)");
    out.finish();
}
