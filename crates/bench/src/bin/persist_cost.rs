//! T-sfence: ordering stalls per operation — WAL vs PAX.
//!
//! §2: "Without nuanced, structure-specific changes to code, stalls are
//! incurred multiple times during a single logical operation like put()
//! (log …, SFENCE, write …, SFENCE, log …, SFENCE, …)". PAX eliminates
//! them: "CPU cores can read and modify cache lines without stalling for
//! cache flushes or barriers" (§3.2).
//!
//! This harness runs identical `PHashMap` inserts over each mechanism and
//! counts the ordering stalls the application threads experienced.
//!
//! Run: `cargo run --release -p pax-bench --bin persist_cost`

use libpax::{Heap, PHashMap, PaxConfig, PaxPool};
use pax_baselines::{Costed, RedoSpace, WalSpace};
use pax_bench::print_table;
use pax_pm::{LatencyProfile, PoolConfig};

const OPS: u64 = 2_000;

fn pool_config() -> PoolConfig {
    PoolConfig::small().with_data_bytes(16 << 20).with_log_bytes(64 << 20)
}

fn main() {
    let profile = LatencyProfile::c6420();
    println!("ordering stalls for {OPS} PHashMap inserts (8 B keys/values)\n");

    // PMDK-style undo WAL: one tx per insert.
    let wal = WalSpace::create(pool_config()).expect("wal");
    {
        let map: PHashMap<u64, u64, _> =
            PHashMap::attach(Heap::attach(wal.clone()).expect("heap")).expect("map");
        for k in 0..OPS {
            wal.tx(|| map.insert(k, k).map(|_| ())).expect("tx insert");
        }
    }
    let wal_costs = wal.costs();

    // Redo WAL: one tx per insert.
    let redo = RedoSpace::create(pool_config()).expect("redo");
    {
        let map: PHashMap<u64, u64, _> =
            PHashMap::attach(Heap::attach(redo.clone()).expect("heap")).expect("map");
        for k in 0..OPS {
            redo.tx(|| map.insert(k, k).map(|_| ())).expect("tx insert");
        }
    }
    let redo_costs = redo.costs();

    // PAX: group commit — one persist() for the whole batch (§3.2).
    let pax = PaxPool::create(PaxConfig::default().with_pool(pool_config())).expect("pool");
    {
        let map: PHashMap<u64, u64, _> =
            PHashMap::attach(Heap::attach(pax.vpm()).expect("heap")).expect("map");
        for k in 0..OPS {
            map.insert(k, k).expect("insert");
        }
    }
    pax.persist().expect("persist");
    let m = pax.device_metrics().expect("metrics");

    let rows = vec![
        vec![
            "mechanism".to_string(),
            "stalls total".to_string(),
            "stalls/op".to_string(),
            "stall ns/op".to_string(),
            "log bytes/op".to_string(),
        ],
        vec![
            "PMDK undo WAL".to_string(),
            wal_costs.sfences.to_string(),
            format!("{:.2}", wal_costs.sfences as f64 / OPS as f64),
            format!(
                "{:.0}",
                wal_costs.sfences as f64 * profile.sfence_ns as f64 / OPS as f64
            ),
            format!("{:.0}", wal_costs.log_bytes as f64 / OPS as f64),
        ],
        vec![
            "redo WAL".to_string(),
            redo_costs.sfences.to_string(),
            format!("{:.2}", redo_costs.sfences as f64 / OPS as f64),
            format!(
                "{:.0}",
                redo_costs.sfences as f64 * profile.sfence_ns as f64 / OPS as f64
            ),
            format!("{:.0}", redo_costs.log_bytes as f64 / OPS as f64),
        ],
        vec![
            "PAX (async, group commit)".to_string(),
            "0".to_string(),
            "0.00".to_string(),
            "0".to_string(),
            format!("{:.0}", m.log_bytes() as f64 / OPS as f64),
        ],
    ];
    print_table(&rows);

    println!();
    println!(
        "PAX undo-logged {} lines and wrote back {} — all off the application's",
        m.undo_entries, m.device_writebacks
    );
    println!(
        "critical path; the epoch's single persist() sent {} snoops and committed once.",
        m.snoops_sent
    );
}
