//! T-sfence: ordering stalls per operation — WAL vs PAX.
//!
//! §2: "Without nuanced, structure-specific changes to code, stalls are
//! incurred multiple times during a single logical operation like put()
//! (log …, SFENCE, write …, SFENCE, log …, SFENCE, …)". PAX eliminates
//! them: "CPU cores can read and modify cache lines without stalling for
//! cache flushes or barriers" (§3.2).
//!
//! This harness runs identical `PHashMap` inserts over each mechanism and
//! counts the ordering stalls the application threads experienced.
//!
//! Run: `cargo run --release -p pax-bench --bin persist_cost` (add
//! `--json` for machine-readable output)

use libpax::{Heap, PHashMap, PaxConfig, PaxPool};
use pax_baselines::{Costed, RedoSpace, WalSpace};
use pax_bench::{BenchOut, Json};
use pax_cache::CacheConfig;
use pax_device::{DeviceConfig, DirectoryConfig};
use pax_exec::MachineParams;
use pax_pm::{LatencyProfile, PoolConfig, LINE_SIZE};

const OPS: u64 = 2_000;

fn pool_config() -> PoolConfig {
    PoolConfig::small().with_data_bytes(16 << 20).with_log_bytes(64 << 20)
}

fn main() {
    let mut out = BenchOut::from_args("persist_cost");
    out.config("ops", Json::U64(OPS));
    let profile = LatencyProfile::c6420();
    out.line(format!("ordering stalls for {OPS} PHashMap inserts (8 B keys/values)\n"));

    // PMDK-style undo WAL: one tx per insert.
    let wal = WalSpace::create(pool_config()).expect("wal");
    {
        let map: PHashMap<u64, u64, _, Heap<_>> =
            PHashMap::attach(Heap::attach(wal.clone()).expect("heap")).expect("map");
        for k in 0..OPS {
            wal.tx(|| map.insert(k, k).map(|_| ())).expect("tx insert");
        }
    }
    let wal_costs = wal.costs();

    // Redo WAL: one tx per insert.
    let redo = RedoSpace::create(pool_config()).expect("redo");
    {
        let map: PHashMap<u64, u64, _, Heap<_>> =
            PHashMap::attach(Heap::attach(redo.clone()).expect("heap")).expect("map");
        for k in 0..OPS {
            redo.tx(|| map.insert(k, k).map(|_| ())).expect("tx insert");
        }
    }
    let redo_costs = redo.costs();

    // PAX: group commit — one persist() for the whole batch (§3.2).
    let pax = PaxPool::create(PaxConfig::default().with_pool(pool_config())).expect("pool");
    {
        let map: PHashMap<u64, u64, _, Heap<_>> =
            PHashMap::attach(Heap::attach(pax.vpm()).expect("heap")).expect("map");
        for k in 0..OPS {
            map.insert(k, k).expect("insert");
        }
    }
    pax.persist().expect("persist");
    let m = pax.device_metrics().expect("metrics");

    let mut rows = vec![vec![
        "mechanism".to_string(),
        "stalls total".to_string(),
        "stalls/op".to_string(),
        "stall ns/op".to_string(),
        "log bytes/op".to_string(),
    ]];
    for (mechanism, label, stalls, log_bytes) in [
        ("pmdk_undo_wal", "PMDK undo WAL", wal_costs.sfences, wal_costs.log_bytes),
        ("redo_wal", "redo WAL", redo_costs.sfences, redo_costs.log_bytes),
        ("pax_group_commit", "PAX (async, group commit)", 0, m.log_bytes()),
    ] {
        let stall_ns_per_op = stalls as f64 * profile.sfence_ns as f64 / OPS as f64;
        rows.push(vec![
            label.to_string(),
            stalls.to_string(),
            format!("{:.2}", stalls as f64 / OPS as f64),
            format!("{stall_ns_per_op:.0}"),
            format!("{:.0}", log_bytes as f64 / OPS as f64),
        ]);
        out.push_result(
            Json::obj()
                .field("mechanism", Json::str(mechanism))
                .field("stalls_total", Json::U64(stalls))
                .field("stalls_per_op", Json::F64(stalls as f64 / OPS as f64))
                .field("stall_ns_per_op", Json::F64(stall_ns_per_op))
                .field("log_bytes_per_op", Json::F64(log_bytes as f64 / OPS as f64)),
        );
    }
    out.table(&rows);

    out.blank();
    out.line(format!(
        "PAX undo-logged {} lines and wrote back {} — all off the application's",
        m.undo_entries, m.device_writebacks
    ));
    out.line(format!(
        "critical path; the epoch's single persist() sent {} snoops and committed once.",
        m.snoops_sent
    ));

    // Snoop-filter pair: the same spill epoch (working set 8x the host
    // cache) persisted with and without the ownership directory, priced
    // by the machine model's persist formula — every elided snoop saves
    // a host round-trip, every coalesced batch one PM write service.
    let spill = |dir: DirectoryConfig| {
        let pool = PaxPool::create(
            PaxConfig::default()
                .with_pool(pool_config())
                .with_cache(CacheConfig::tiny(16 * LINE_SIZE, 2))
                .with_device(DeviceConfig::default().with_directory(dir)),
        )
        .expect("pool");
        {
            use libpax::MemSpace;
            let vpm = pool.vpm();
            for i in 0..128u64 {
                vpm.write_u64(i * LINE_SIZE as u64, i).expect("write");
            }
        }
        pool.persist().expect("persist");
        pool.device_metrics().expect("metrics")
    };
    let params = MachineParams::paper();
    out.blank();
    out.line("epoch persist cost, 128-line spill epoch over a 16-line host cache:");
    for (mechanism, dir) in [
        ("pax_persist_unfiltered", DirectoryConfig::disabled()),
        ("pax_persist_filtered", DirectoryConfig::enabled()),
    ] {
        let m = spill(dir);
        let epoch_ns = params.persist_epoch_ns(m.snoops_sent, m.device_writebacks);
        out.line(format!(
            "  {mechanism:>23}: {} snoops ({} filtered), {} write-backs in {} batches \
             -> {epoch_ns} ns modeled",
            m.snoops_sent, m.dir_filtered_snoops, m.device_writebacks, m.wb_batches
        ));
        out.push_result(
            Json::obj()
                .field("mechanism", Json::str(mechanism))
                .field("snoops_sent", Json::U64(m.snoops_sent))
                .field("dir_filtered_snoops", Json::U64(m.dir_filtered_snoops))
                .field("writebacks", Json::U64(m.device_writebacks))
                .field("wb_batches", Json::U64(m.wb_batches))
                .field("persist_epoch_ns", Json::U64(epoch_ns)),
        );
    }

    // Large-epoch flush throughput: draining the undo log's pending queue
    // is O(n) (a VecDeque pop per entry), so one big epoch must flush in
    // linear time. The old `Vec::remove(0)` drain was quadratic and blows
    // this bound by orders of magnitude at this epoch size.
    const LARGE: u64 = 20_000;
    let big = PaxPool::create(PaxConfig::default().with_pool(pool_config())).expect("pool");
    {
        use libpax::MemSpace;
        let vpm = big.vpm();
        for i in 0..LARGE {
            vpm.write_u64(i * 64, i).expect("write");
        }
    }
    let start = std::time::Instant::now();
    big.persist().expect("large persist");
    let elapsed = start.elapsed();
    let ns_per_entry = elapsed.as_nanos() as f64 / LARGE as f64;
    assert!(
        ns_per_entry < 10_000.0,
        "large-epoch flush is not linear: {ns_per_entry:.0} host-ns per entry"
    );
    out.blank();
    out.line(format!(
        "large epoch: flushed {LARGE} undo entries in {:.1} ms ({ns_per_entry:.0} host-ns/entry)",
        elapsed.as_secs_f64() * 1e3
    ));
    out.push_result(
        Json::obj()
            .field("mechanism", Json::str("pax_large_epoch_flush"))
            .field("flush_entries", Json::U64(LARGE))
            .field("flush_host_ns_per_entry", Json::F64(ns_per_entry)),
    );
    out.finish();
}
