//! Same-lane undo-bank append contention microbench.
//!
//! N OS threads append entries into ONE undo bank — the worst case the
//! lock-free CAS engine exists for: before it, every store on a lane
//! serialized on the lane mutex for its log append. The bench times the
//! append path alone (reserve + fill + publish; no pump, no media — the
//! bank is volatile until drained), in both engines:
//!
//! - `cas`: threads share one `AtomicBank` and append with `&self` — the
//!   packed-tail CAS reserve, slot fill, ready-bit publish path.
//! - `locked`: threads contend on a `Mutex<UndoLog>` around the original
//!   engine, modelling the pre-PR lane-lock serialization.
//!
//! The CI ratchet enforces the point of the change: on a ≥4-core host
//! the CAS engine's 1→4-thread scaling must clear a bar the mutex
//! engine structurally cannot.
//!
//! Run: `cargo run --release -p pax-bench --bin logappend` (add `--json`
//! for machine-readable output; `--threads 1,2,4` and `--ops N` to
//! resize).

use std::sync::Mutex;
use std::time::Instant;

use pax_bench::{arg_value, thread_series, BenchOut, Json};
use pax_device::{UndoEntry, UndoLog};
use pax_pm::{CacheLine, LineAddr};

/// One timed same-bank append storm; returns wall-clock Mops.
fn measure(threads: usize, ops_per_thread: u64, locked: bool) -> f64 {
    let capacity = threads as u64 * ops_per_thread + 1;
    let total = threads as u64 * ops_per_thread;
    let entry = |t: usize, i: u64| {
        UndoEntry::single(1, LineAddr(t as u64 * ops_per_thread + i), CacheLine::zeroed())
    };
    let start;
    if locked {
        let log = Mutex::new(UndoLog::with_region_mode(0, capacity, true));
        start = Instant::now();
        std::thread::scope(|s| {
            for t in 0..threads {
                let log = &log;
                s.spawn(move || {
                    for i in 0..ops_per_thread {
                        log.lock().unwrap().append(entry(t, i)).expect("capacity sized to fit");
                    }
                });
            }
        });
    } else {
        let log = UndoLog::with_region_mode(0, capacity, false);
        let bank = log.bank().expect("CAS engine has a bank");
        start = Instant::now();
        std::thread::scope(|s| {
            for t in 0..threads {
                let bank = &bank;
                s.spawn(move || {
                    for i in 0..ops_per_thread {
                        bank.append(entry(t, i)).expect("capacity sized to fit");
                    }
                });
            }
        });
    }
    total as f64 / start.elapsed().as_secs_f64() / 1e6
}

fn main() {
    let mut out = BenchOut::from_args("logappend");
    let threads = thread_series(&[1, 2, 4]);
    let ops: u64 = arg_value("--ops").map_or(200_000, |v| v.parse().expect("bad --ops"));
    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    out.config("ops_per_thread", Json::U64(ops));
    out.config("host_cores", Json::U64(host_cores as u64));

    out.line(format!(
        "\nSame-lane undo append [Mops] — lock-free CAS bank vs mutex engine, \
         {ops} ops/thread"
    ));
    let mut rows = vec![vec![
        "threads".to_string(),
        "cas".to_string(),
        "cas vs 1".to_string(),
        "locked".to_string(),
        "locked vs 1".to_string(),
    ]];
    let (mut cas_base, mut locked_base) = (None, None);
    for &t in &threads {
        eprintln!("measuring {t} thread(s) …");
        let cas = measure(t, ops, false);
        let locked = measure(t, ops, true);
        let cb = *cas_base.get_or_insert(cas);
        let lb = *locked_base.get_or_insert(locked);
        let (cas_scaling, locked_scaling) = (cas / cb, locked / lb);
        rows.push(vec![
            t.to_string(),
            format!("{cas:.2}"),
            format!("{cas_scaling:.2}×"),
            format!("{locked:.2}"),
            format!("{locked_scaling:.2}×"),
        ]);
        for (mode, mops, scaling) in [("cas", cas, cas_scaling), ("locked", locked, locked_scaling)]
        {
            out.push_result(
                Json::obj()
                    .field("threads", Json::U64(t as u64))
                    .field("mode", Json::str(mode))
                    .field("mops", Json::F64(mops))
                    .field("scaling_vs_1", Json::F64(scaling)),
            );
        }
    }
    out.table(&rows);
    out.finish();
}
