//! A-snoopfilter: ownership-directory ablation on a spill workload.
//!
//! The home agent sees every coherence message, so by persist time it
//! already knows which logged lines the host still plausibly owns: a
//! line that came back via `DirtyEvict` (or was invalidated by a CLWB)
//! needs no `SnpData` at all. This harness runs the workload the filter
//! was built for — a working set several times the host cache, so most
//! dirty lines spill back to the device *between* persists — once with
//! the directory enabled (`filtered`) and once with
//! `DirectoryConfig::disabled()` (`unfiltered`, the pre-directory
//! always-snoop behaviour).
//!
//! Reported per series: persist-time snoops per store, coalesced
//! write-back batches, and the deterministic throughput proxy used by
//! the tenants bench (ops per 1k durable-write steps). CI enforces the
//! headline via `ci/bench_ratchet.py`: the filtered series must need at
//! most half the unfiltered snoops/op, and neither series' throughput
//! may regress more than 5% run-over-run.
//!
//! Run: `cargo run --release -p pax-bench --bin snoopfilter` (add
//! `--json` for machine-readable output)

use libpax::{MemSpace, PaxConfig, PaxPool};
use pax_bench::{BenchOut, Json};
use pax_cache::CacheConfig;
use pax_device::{DeviceConfig, DirectoryConfig};
use pax_pm::{PoolConfig, LINE_SIZE};

/// Epochs: write the working set, persist, repeat.
const ROUNDS: u64 = 8;
/// Working-set lines per epoch.
const WS_LINES: u64 = 256;
/// Host cache lines — 8x smaller than the working set, so roughly 7/8
/// of each epoch's dirty lines spill back to the device before the
/// persist and need no snoop.
const HOST_CACHE_LINES: usize = 32;

struct RunStats {
    ops: u64,
    steps: u64,
    snoops: u64,
    filtered_snoops: u64,
    wb_batches: u64,
}

fn run(dir: DirectoryConfig) -> RunStats {
    let config = PaxConfig::default()
        .with_pool(PoolConfig::small().with_data_bytes(4 << 20).with_log_bytes(16 << 20))
        .with_cache(CacheConfig::tiny(HOST_CACHE_LINES * LINE_SIZE, 2))
        .with_device(DeviceConfig::default().with_shards(2).with_directory(dir));
    let pool = PaxPool::create(config).expect("pool");
    let clock = pool.crash_clock().expect("clock");
    let vpm = pool.vpm();

    let before = clock.steps_taken();
    for round in 0..ROUNDS {
        for i in 0..WS_LINES {
            vpm.write_u64(i * LINE_SIZE as u64, round * WS_LINES + i).expect("write");
        }
        pool.persist().expect("persist");
    }
    let m = pool.device_metrics().expect("metrics");
    RunStats {
        ops: ROUNDS * WS_LINES,
        steps: clock.steps_taken() - before,
        snoops: m.snoops_sent,
        filtered_snoops: m.dir_filtered_snoops,
        wb_batches: m.wb_batches,
    }
}

fn main() {
    let mut out = BenchOut::from_args("snoopfilter");
    out.config("rounds", Json::U64(ROUNDS));
    out.config("working_set_lines", Json::U64(WS_LINES));
    out.config("host_cache_lines", Json::U64(HOST_CACHE_LINES as u64));
    out.line(format!(
        "snoop-filter ablation: {WS_LINES}-line working set over a \
         {HOST_CACHE_LINES}-line host cache, {ROUNDS} persist epochs\n"
    ));

    let unfiltered = run(DirectoryConfig::disabled());
    let filtered = run(DirectoryConfig::enabled());

    let mut rows = vec![vec![
        "series".to_string(),
        "snoops".to_string(),
        "snoops/op".to_string(),
        "filtered".to_string(),
        "wb batches".to_string(),
        "ops/kstep".to_string(),
    ]];
    for (name, s) in [("unfiltered", &unfiltered), ("filtered", &filtered)] {
        let snoops_per_op = s.snoops as f64 / s.ops as f64;
        let ops_per_kstep = s.ops as f64 * 1000.0 / s.steps.max(1) as f64;
        rows.push(vec![
            name.to_string(),
            s.snoops.to_string(),
            format!("{snoops_per_op:.3}"),
            s.filtered_snoops.to_string(),
            s.wb_batches.to_string(),
            format!("{ops_per_kstep:.1}"),
        ]);
        out.push_result(
            Json::obj()
                .field("series", Json::str(name))
                .field("ops", Json::U64(s.ops))
                .field("steps", Json::U64(s.steps))
                .field("snoops_sent", Json::U64(s.snoops))
                .field("snoops_per_op", Json::F64(snoops_per_op))
                .field("dir_filtered_snoops", Json::U64(s.filtered_snoops))
                .field("wb_batches", Json::U64(s.wb_batches))
                .field("ops_per_kstep", Json::F64(ops_per_kstep)),
        );
    }
    out.table(&rows);

    let ratio = filtered.snoops as f64 / unfiltered.snoops.max(1) as f64;
    out.push_result(
        Json::obj()
            .field("series", Json::str("filter"))
            .field("snoop_ratio", Json::F64(ratio))
            .field("snoop_reduction", Json::F64(1.0 / ratio.max(f64::EPSILON))),
    );

    out.blank();
    out.line(format!(
        "the directory elides {} of {} persist snoops ({:.1}x fewer snoops/op); \
         the CI bar is >= 2x.",
        filtered.filtered_snoops,
        unfiltered.snoops,
        1.0 / ratio.max(f64::EPSILON)
    ));
    out.line("Every elided snoop is a line the host already gave back (DirtyEvict) —");
    out.line("its newest bytes sit dirty in device HBM, so the persist writes them");
    out.line("back directly, in coalesced contiguous batches.");
    out.finish();
}
