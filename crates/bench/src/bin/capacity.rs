//! T-capacity: no working-set limits and single-copy PM use.
//!
//! §3.3: "if the device is overwhelmed with modified cache lines that are
//! part of the current epoch, it can still evict them and write them back
//! once they are logged" — unlike HTM-style designs whose epochs die when
//! a buffer fills. And §1: snapshotting costs one copy of the structure,
//! not the ≥2× of physical-snapshot systems [21, 22, 32].
//!
//! This harness drives epochs whose write sets are multiples of the HBM
//! buffer capacity and shows every epoch still commits, plus the PM
//! capacity a copy-based snapshotter would have needed.
//!
//! Run: `cargo run --release -p pax-bench --bin capacity` (add `--json`
//! for machine-readable output)

use libpax::{MemSpace, PaxConfig, PaxPool};
use pax_bench::{BenchOut, Json};
use pax_cache::CacheConfig;
use pax_device::{DeviceConfig, EvictionPolicy, HbmConfig};
use pax_pm::{PoolConfig, LINE_SIZE};

const HBM_LINES: usize = 64;

fn main() {
    let mut out = BenchOut::from_args("capacity");
    out.config("hbm_lines", Json::U64(HBM_LINES as u64));
    out.line(format!(
        "epochs with write sets up to 32× the device HBM buffer ({HBM_LINES} lines)\n"
    ));

    let mut rows = vec![vec![
        "write set [lines]".to_string(),
        "× HBM".to_string(),
        "epoch committed".to_string(),
        "proactive writebacks".to_string(),
        "eviction stalls".to_string(),
        "PM copies (PAX)".to_string(),
        "PM copies (snapshot-based)".to_string(),
    ]];

    for factor in [1usize, 4, 8, 16, 32] {
        let lines = HBM_LINES * factor;
        let pool = PaxPool::create(
            PaxConfig::default()
                .with_pool(
                    PoolConfig::small()
                        .with_data_bytes(lines * LINE_SIZE * 2)
                        .with_log_bytes(lines * 128 * 2),
                )
                .with_device(DeviceConfig::default().with_hbm(HbmConfig {
                    capacity_bytes: HBM_LINES * LINE_SIZE,
                    ways: 4,
                    policy: EvictionPolicy::PreferDurable,
                }))
                // Host cache smaller than the write set so lines actually
                // flow to the device mid-epoch.
                .with_cache(CacheConfig::tiny(16 * LINE_SIZE, 4)),
        )
        .expect("pool");

        let vpm = pool.vpm();
        for i in 0..lines as u64 {
            vpm.write_u64(i * LINE_SIZE as u64, i).expect("write");
        }
        let epoch = pool.persist().expect("persist never fails on capacity");
        let m = pool.device_metrics().expect("metrics");

        rows.push(vec![
            lines.to_string(),
            format!("{factor}×"),
            format!("yes (epoch {epoch})"),
            m.background_writebacks.to_string(),
            m.forced_log_flushes.to_string(),
            "1".to_string(),
            "2".to_string(),
        ]);
        out.push_result(
            Json::obj()
                .field("write_set_lines", Json::U64(lines as u64))
                .field("hbm_factor", Json::U64(factor as u64))
                .field("epoch_committed", Json::Bool(true))
                .field("committed_epoch", Json::U64(epoch))
                .field("background_writebacks", Json::U64(m.background_writebacks))
                .field("eviction_stalls", Json::U64(m.forced_log_flushes))
                .field("pm_copies_pax", Json::U64(1))
                .field("pm_copies_snapshot", Json::U64(2)),
        );
    }
    out.table(&rows);

    out.blank();
    out.line("every epoch commits regardless of write-set size: logged-durable lines are");
    out.line("evicted from HBM mid-epoch and written back early (§3.3). Kamino-Tx/Pronto-");
    out.line("style physical snapshots would hold a second full copy on PM (2× capacity).");
    out.finish();
}
