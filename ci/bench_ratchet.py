#!/usr/bin/env python3
"""Bench ratchet: fail CI when a headline benchmark regresses.

Usage: bench_ratchet.py BASELINE_DIR CURRENT_DIR

Compares the current run's --json outputs against the previous run's
(restored from the CI cache). Tolerances per metric:

  fig2b            mops               must be >= 0.95x baseline (per
                                      (threads, backend) point)
  ablation_epoch   snoops_per_op      must be <= 1.05x baseline (per
                                      ops_per_persist point)
  ablation_overlap inline_reduction   must be >= 0.95x baseline (per
                                      epoch_lines point, legacy series)
  tenants          victim_ops_per_kstep  must be >= 0.95x baseline (per
                                      solo/noisy series)
  snoopfilter      ops_per_kstep      must be >= 0.95x baseline (per
                                      filtered/unfiltered series);
                   snoops_per_op      must be <= 1.05x baseline
  fig2b_measured   mops               must be >= 0.90x baseline (per
                                      threads point; wall-clock numbers
                                      are noisier than modelled ones)
  logappend        mops               must be >= 0.90x baseline (per
                                      (threads, mode) point; same
                                      wall-clock noise budget)
  persistency      ops_per_kstep      must be >= 0.90x baseline (per
                                      model series: strict / epoch /
                                      buffered2 / buffered4)
  allocbench       mops               must be >= 0.90x baseline (per
                                      (threads, mode) point: bitmap
                                      thread series + heap baseline)
  hbmstore         mops               must be >= 0.90x baseline (per
                                      (threads, mode) point: lockfree
                                      and locked HBM set-index engines)

Independently of any baseline, three absolute acceptance bars apply:

  - the free-running series of ablation_overlap: at the largest tick
    budget, steady inline persist steps stay within 2x the snoop-sweep
    cost;
  - the tenants isolation series: the noisy-neighbor victim keeps at
    least 70% of its solo throughput (victim_ratio >= 0.70);
  - the snoopfilter spill workload: the ownership directory must cut
    persist snoops/op at least 2x (filtered <= 0.5x unfiltered);
  - the fig2b_measured real-thread series: on a host with >= 8 cores
    the 8-thread run must scale >= 1.5x over 1 thread; on a starved
    host (CI containers are often pinned to one core, where real
    speedup is physically impossible) the bar is instead a
    no-collapse floor — 8 threads keep >= 0.35x of single-thread
    throughput, i.e. shard-parallel locking degrades gracefully
    instead of convoying. The artifact records `host_cores`
    (std::thread::available_parallelism) so the check picks the bar
    that the hardware can express.
  - the logappend same-lane append series: on a host with >= 4 cores
    the lock-free CAS bank must scale >= 1.3x from 1 to 4 appender
    threads (the mutex engine structurally cannot); on a starved host
    the bar degrades to a no-collapse floor (>= 0.15x). On every host
    the CAS engine's top-width scaling must be at least 0.9x the
    mutex engine's — the lock-free path must never convoy harder than
    the lock it replaced. The floor is deliberately NOT applied to
    the `locked` series: its collapse under contention is the
    behavior the CAS engine exists to remove.
  - the persistency flush-heavy ablation: buffered-epoch with K=4 must
    sustain at least 1.3x the strict model's ops/kstep — relaxing the
    persistency model has to buy real throughput back, or the
    abstraction is pure overhead.
  - the allocbench slot-churn series: on a host with >= 4 cores the
    bitmap allocator's per-core trees must scale >= 1.3x from 1 to 4
    threads (the single-free-list heap structurally cannot); on a
    starved host the bar degrades to a no-collapse floor (>= 0.15x).
    Independently, every recovery row must keep the attach-time bitmap
    scan linear: scan_steps <= 2x pool_frames — recovery IS
    construction, so a super-linear scan means the §3.4 story broke.
  - the hbmstore same-lane store storm: on a host with >= 4 cores the
    lock-free HBM set index must scale >= 1.3x from 1 to 4 storing
    threads (the lane-mutex engine structurally cannot); on a starved
    host the bar degrades to a no-collapse floor (>= 0.15x). On every
    host the lockfree engine's top-width scaling must be at least
    0.9x the locked engine's — the per-set spinlock must never convoy
    harder than the lane lock it replaced. The floor is deliberately
    NOT applied to the `locked` series: its collapse under same-lane
    contention is the behavior the set index exists to remove.

A missing baseline file seeds the ratchet (exit 0); the workflow then
saves CURRENT_DIR as the next run's baseline.
"""

import json
import sys
from pathlib import Path

FIG2B_TOL = 0.95
SNOOPS_TOL = 1.05
REDUCTION_TOL = 0.95
FREE_RUNNING_FACTOR = 2.0
TENANTS_TOL = 0.95
ISOLATION_FLOOR = 0.70
SNOOPFILTER_TOL = 0.95
FILTER_CEILING = 0.5
MEASURED_TOL = 0.90
MEASURED_SCALING_BAR = 1.5
MEASURED_SCALING_CORES = 8
MEASURED_NO_COLLAPSE_FLOOR = 0.35
LOGAPPEND_TOL = 0.90
LOGAPPEND_SCALING_BAR = 1.3
LOGAPPEND_SCALING_CORES = 4
LOGAPPEND_NO_COLLAPSE_FLOOR = 0.15
PERSISTENCY_TOL = 0.90
PERSISTENCY_BUFFERED_BAR = 1.3
ALLOCBENCH_TOL = 0.90
ALLOCBENCH_SCALING_BAR = 1.3
ALLOCBENCH_SCALING_CORES = 4
ALLOCBENCH_NO_COLLAPSE_FLOOR = 0.15
ALLOCBENCH_SCAN_FACTOR = 2.0
HBMSTORE_TOL = 0.90
HBMSTORE_SCALING_BAR = 1.3
HBMSTORE_SCALING_CORES = 4
HBMSTORE_NO_COLLAPSE_FLOOR = 0.15


def load(path: Path):
    if not path.exists():
        return None
    with path.open() as f:
        return json.load(f)


def check_free_running_acceptance(current, failures):
    """Absolute bar, no baseline needed."""
    rows = [r for r in current["results"] if r.get("series") == "free_running"]
    if not rows:
        failures.append("ablation_overlap: free_running series missing")
        return
    top = max(rows, key=lambda r: r["tick_budget"])
    bar = FREE_RUNNING_FACTOR * max(top["snoop_sweep_steps"], 1)
    if top["inline_steps"] > bar:
        failures.append(
            f"ablation_overlap free_running: inline_steps {top['inline_steps']} "
            f"exceeds {FREE_RUNNING_FACTOR}x snoop sweep ({bar:.0f}) at "
            f"tick_budget {top['tick_budget']}"
        )
    else:
        print(
            f"free_running acceptance ok: inline {top['inline_steps']} <= "
            f"{bar:.0f} at tick_budget {top['tick_budget']}"
        )


def check_tenant_isolation(current, failures):
    """Absolute isolation floor, no baseline needed: the noisy-neighbor
    victim keeps at least ISOLATION_FLOOR of its solo throughput."""
    rows = [r for r in current["results"] if r.get("series") == "isolation"]
    if not rows:
        failures.append("tenants: isolation series missing")
        return
    ratio = rows[0]["victim_ratio"]
    if ratio < ISOLATION_FLOOR:
        failures.append(
            f"tenants isolation: victim_ratio {ratio:.3f} below the "
            f"{ISOLATION_FLOOR} floor (noisy neighbor starves the victim)"
        )
    else:
        print(f"tenant isolation ok: victim_ratio {ratio:.3f} >= {ISOLATION_FLOOR}")


def check_snoopfilter_acceptance(current, failures):
    """Absolute bar, no baseline needed: on the spill workload the
    ownership directory must elide at least half the persist snoops."""
    rows = {r["series"]: r for r in current["results"] if "series" in r}
    for series in ("filtered", "unfiltered"):
        if series not in rows:
            failures.append(f"snoopfilter: {series} series missing")
            return
    filtered = rows["filtered"]["snoops_per_op"]
    unfiltered = rows["unfiltered"]["snoops_per_op"]
    ceiling = FILTER_CEILING * unfiltered
    if filtered > ceiling:
        failures.append(
            f"snoopfilter: filtered snoops_per_op {filtered:.3f} exceeds "
            f"{FILTER_CEILING}x unfiltered ({unfiltered:.3f}) — the "
            f"directory no longer cuts snoops 2x on the spill workload"
        )
    else:
        print(
            f"snoopfilter acceptance ok: filtered {filtered:.3f} <= "
            f"{FILTER_CEILING}x unfiltered {unfiltered:.3f} snoops/op"
        )


def check_measured_scaling(current, failures):
    """Absolute bar, no baseline needed: real-thread scaling of the
    shard-parallel engine. On a host with MEASURED_SCALING_CORES or
    more cores, the widest thread count must reach MEASURED_SCALING_BAR
    over one thread. On a starved host (single-core CI runners cannot
    exhibit real speedup) the bar degrades to a no-collapse floor:
    lock contention must not convoy throughput below
    MEASURED_NO_COLLAPSE_FLOOR of the single-thread rate."""
    host_cores = current.get("config", {}).get("host_cores", 1)
    rows = [r for r in current["results"] if "scaling_vs_1" in r]
    if not rows:
        failures.append("fig2b_measured: no scaling_vs_1 rows")
        return
    top = max(rows, key=lambda r: r["threads"])
    scaling = top["scaling_vs_1"]
    if host_cores >= MEASURED_SCALING_CORES:
        if scaling < MEASURED_SCALING_BAR:
            failures.append(
                f"fig2b_measured: {top['threads']}-thread scaling "
                f"{scaling:.2f}x below the {MEASURED_SCALING_BAR}x bar "
                f"(host_cores={host_cores})"
            )
        else:
            print(
                f"measured scaling ok: {scaling:.2f}x at "
                f"{top['threads']} threads >= {MEASURED_SCALING_BAR}x "
                f"(host_cores={host_cores})"
            )
    elif scaling < MEASURED_NO_COLLAPSE_FLOOR:
        failures.append(
            f"fig2b_measured: {top['threads']}-thread throughput collapsed "
            f"to {scaling:.2f}x of single-thread (floor "
            f"{MEASURED_NO_COLLAPSE_FLOOR}; host_cores={host_cores} — "
            f"contention convoy, not core starvation)"
        )
    else:
        print(
            f"measured no-collapse ok: {scaling:.2f}x at {top['threads']} "
            f"threads >= {MEASURED_NO_COLLAPSE_FLOOR} floor "
            f"(host_cores={host_cores} < {MEASURED_SCALING_CORES}, "
            f"real speedup not expressible)"
        )


def check_logappend_scaling(current, failures):
    """Absolute bars, no baseline needed: the lock-free CAS undo bank
    must actually remove the same-lane append serialization. On a host
    with LOGAPPEND_SCALING_CORES or more cores, the CAS engine's widest
    thread count must scale LOGAPPEND_SCALING_BAR over one thread; on a
    starved host real speedup is impossible, so the bar degrades to a
    no-collapse floor. On every host the CAS engine's scaling must be at
    least the mutex engine's at the same width — if the CAS path ever
    convoys harder than the lock it replaced, that is a regression
    regardless of core count."""
    host_cores = current.get("config", {}).get("host_cores", 1)
    by_mode = {}
    for r in current["results"]:
        if "scaling_vs_1" in r and "mode" in r:
            by_mode.setdefault(r["mode"], []).append(r)
    if "cas" not in by_mode:
        failures.append("logappend: cas series missing")
        return
    top = max(by_mode["cas"], key=lambda r: r["threads"])
    scaling = top["scaling_vs_1"]
    if host_cores >= LOGAPPEND_SCALING_CORES:
        if scaling < LOGAPPEND_SCALING_BAR:
            failures.append(
                f"logappend: cas {top['threads']}-thread scaling "
                f"{scaling:.2f}x below the {LOGAPPEND_SCALING_BAR}x bar "
                f"(host_cores={host_cores}) — same-lane appends are "
                f"serializing again"
            )
        else:
            print(
                f"logappend scaling ok: cas {scaling:.2f}x at "
                f"{top['threads']} threads >= {LOGAPPEND_SCALING_BAR}x "
                f"(host_cores={host_cores})"
            )
    elif scaling < LOGAPPEND_NO_COLLAPSE_FLOOR:
        failures.append(
            f"logappend: cas {top['threads']}-thread throughput collapsed "
            f"to {scaling:.2f}x of single-thread (floor "
            f"{LOGAPPEND_NO_COLLAPSE_FLOOR}; host_cores={host_cores})"
        )
    else:
        print(
            f"logappend no-collapse ok: cas {scaling:.2f}x at "
            f"{top['threads']} threads >= {LOGAPPEND_NO_COLLAPSE_FLOOR} "
            f"floor (host_cores={host_cores} < {LOGAPPEND_SCALING_CORES})"
        )
    locked = by_mode.get("locked", [])
    locked_top = max(locked, key=lambda r: r["threads"], default=None)
    if locked_top and locked_top["threads"] == top["threads"]:
        # 10% slack: the two engines can sit near parity on starved
        # hosts, and run-to-run jitter should not fail the build there.
        if scaling < 0.9 * locked_top["scaling_vs_1"]:
            failures.append(
                f"logappend: cas scaling {scaling:.2f}x trails the mutex "
                f"engine's {locked_top['scaling_vs_1']:.2f}x at "
                f"{top['threads']} threads — the lock-free path convoys "
                f"harder than the lock it replaced"
            )
        else:
            print(
                f"logappend cas-vs-locked ok: {scaling:.2f}x >= "
                f"{locked_top['scaling_vs_1']:.2f}x at {top['threads']} threads"
            )


def check_allocbench_scaling(current, failures):
    """Absolute bars, no baseline needed. Scaling: on a host with
    ALLOCBENCH_SCALING_CORES or more cores, the bitmap allocator's
    widest thread count must scale ALLOCBENCH_SCALING_BAR over one
    thread (per-core claimed trees must remove free-list contention);
    on a starved host the bar degrades to a no-collapse floor.
    Recovery: every recovery row keeps the attach-time scan linear in
    pool frames (scan_steps <= ALLOCBENCH_SCAN_FACTOR x pool_frames) —
    attach IS recovery, so the scan's complexity is the recovery
    story."""
    host_cores = current.get("config", {}).get("host_cores", 1)
    bitmap = [
        r for r in current["results"]
        if r.get("mode") == "bitmap" and "scaling_vs_1" in r
    ]
    if not bitmap:
        failures.append("allocbench: bitmap series missing")
        return
    top = max(bitmap, key=lambda r: r["threads"])
    scaling = top["scaling_vs_1"]
    if host_cores >= ALLOCBENCH_SCALING_CORES:
        if scaling < ALLOCBENCH_SCALING_BAR:
            failures.append(
                f"allocbench: bitmap {top['threads']}-thread scaling "
                f"{scaling:.2f}x below the {ALLOCBENCH_SCALING_BAR}x bar "
                f"(host_cores={host_cores}) — per-core trees are "
                f"contending again"
            )
        else:
            print(
                f"allocbench scaling ok: bitmap {scaling:.2f}x at "
                f"{top['threads']} threads >= {ALLOCBENCH_SCALING_BAR}x "
                f"(host_cores={host_cores})"
            )
    elif scaling < ALLOCBENCH_NO_COLLAPSE_FLOOR:
        failures.append(
            f"allocbench: bitmap {top['threads']}-thread throughput "
            f"collapsed to {scaling:.2f}x of single-thread (floor "
            f"{ALLOCBENCH_NO_COLLAPSE_FLOOR}; host_cores={host_cores})"
        )
    else:
        print(
            f"allocbench no-collapse ok: bitmap {scaling:.2f}x at "
            f"{top['threads']} threads >= {ALLOCBENCH_NO_COLLAPSE_FLOOR} "
            f"floor (host_cores={host_cores} < {ALLOCBENCH_SCALING_CORES})"
        )
    recovery = [r for r in current["results"] if r.get("series") == "recovery"]
    if not recovery:
        failures.append("allocbench: recovery series missing")
        return
    for r in recovery:
        bound = ALLOCBENCH_SCAN_FACTOR * r["pool_frames"]
        if r["scan_steps"] > bound:
            failures.append(
                f"allocbench recovery at {r['pool_bytes']} bytes: "
                f"scan_steps {r['scan_steps']} exceeds "
                f"{ALLOCBENCH_SCAN_FACTOR}x pool_frames "
                f"({r['pool_frames']}) — the recovery scan went "
                f"super-linear"
            )
    if all(
        r["scan_steps"] <= ALLOCBENCH_SCAN_FACTOR * r["pool_frames"]
        for r in recovery
    ):
        widest = max(recovery, key=lambda r: r["pool_frames"])
        print(
            f"allocbench recovery ok: scan linear up to "
            f"{widest['pool_frames']} frames "
            f"({widest['scan_steps']} steps, {widest['scan_ns']} ns)"
        )


def check_hbmstore_scaling(current, failures):
    """Absolute bars, no baseline needed: the lock-free HBM set index
    must actually take the lane mutex off the store hot path. On a host
    with HBMSTORE_SCALING_CORES or more cores, the lockfree engine's
    widest thread count must scale HBMSTORE_SCALING_BAR over one
    thread; on a starved host real speedup is impossible, so the bar
    degrades to a no-collapse floor. On every host the lockfree
    engine's scaling must be at least 0.9x the locked engine's at the
    same width — the per-set spinlock must never convoy harder than
    the lane lock it replaced."""
    host_cores = current.get("config", {}).get("host_cores", 1)
    by_mode = {}
    for r in current["results"]:
        if "scaling_vs_1" in r and "mode" in r:
            by_mode.setdefault(r["mode"], []).append(r)
    if "lockfree" not in by_mode:
        failures.append("hbmstore: lockfree series missing")
        return
    top = max(by_mode["lockfree"], key=lambda r: r["threads"])
    scaling = top["scaling_vs_1"]
    if host_cores >= HBMSTORE_SCALING_CORES:
        if scaling < HBMSTORE_SCALING_BAR:
            failures.append(
                f"hbmstore: lockfree {top['threads']}-thread scaling "
                f"{scaling:.2f}x below the {HBMSTORE_SCALING_BAR}x bar "
                f"(host_cores={host_cores}) — same-lane stores are "
                f"serializing on the set index again"
            )
        else:
            print(
                f"hbmstore scaling ok: lockfree {scaling:.2f}x at "
                f"{top['threads']} threads >= {HBMSTORE_SCALING_BAR}x "
                f"(host_cores={host_cores})"
            )
    elif scaling < HBMSTORE_NO_COLLAPSE_FLOOR:
        failures.append(
            f"hbmstore: lockfree {top['threads']}-thread throughput "
            f"collapsed to {scaling:.2f}x of single-thread (floor "
            f"{HBMSTORE_NO_COLLAPSE_FLOOR}; host_cores={host_cores})"
        )
    else:
        print(
            f"hbmstore no-collapse ok: lockfree {scaling:.2f}x at "
            f"{top['threads']} threads >= {HBMSTORE_NO_COLLAPSE_FLOOR} "
            f"floor (host_cores={host_cores} < {HBMSTORE_SCALING_CORES})"
        )
    locked = by_mode.get("locked", [])
    locked_top = max(locked, key=lambda r: r["threads"], default=None)
    if locked_top and locked_top["threads"] == top["threads"]:
        # Same 10% slack as logappend: near-parity plus jitter on a
        # starved host should not fail the build.
        if scaling < 0.9 * locked_top["scaling_vs_1"]:
            failures.append(
                f"hbmstore: lockfree scaling {scaling:.2f}x trails the "
                f"locked engine's {locked_top['scaling_vs_1']:.2f}x at "
                f"{top['threads']} threads — the set index convoys "
                f"harder than the lane lock it replaced"
            )
        else:
            print(
                f"hbmstore lockfree-vs-locked ok: {scaling:.2f}x >= "
                f"{locked_top['scaling_vs_1']:.2f}x at {top['threads']} threads"
            )


def ratchet_hbmstore(baseline, current, failures):
    base = {
        (r["threads"], r["mode"]): r["mops"]
        for r in baseline["results"]
        if "mops" in r and "mode" in r
    }
    for r in current["results"]:
        key = (r.get("threads"), r.get("mode"))
        if key not in base or "mops" not in r:
            continue
        floor = HBMSTORE_TOL * base[key]
        if r["mops"] < floor:
            failures.append(
                f"hbmstore threads={key[0]} mode={key[1]}: "
                f"{r['mops']:.2f} Mops < {HBMSTORE_TOL}x baseline "
                f"{base[key]:.2f}"
            )


def ratchet_allocbench(baseline, current, failures):
    base = {
        (r["threads"], r["mode"]): r["mops"]
        for r in baseline["results"]
        if "mops" in r and "mode" in r
    }
    for r in current["results"]:
        key = (r.get("threads"), r.get("mode"))
        if key not in base or "mops" not in r:
            continue
        floor = ALLOCBENCH_TOL * base[key]
        if r["mops"] < floor:
            failures.append(
                f"allocbench threads={key[0]} mode={key[1]}: "
                f"{r['mops']:.3f} Mops < {ALLOCBENCH_TOL}x baseline "
                f"{base[key]:.3f}"
            )


def check_persistency_acceptance(current, failures):
    """Absolute bar, no baseline needed: on the flush-heavy mix the
    buffered-epoch model (K=4) must sustain PERSISTENCY_BUFFERED_BAR
    times the strict model's deterministic throughput. The models are
    a semantics/performance dial — if loosening the contract to
    'K closes may roll back' does not buy back throughput over
    'every store is durable', the dial is broken."""
    rows = {r["series"]: r for r in current["results"] if "ops_per_kstep" in r}
    for series in ("strict", "buffered4"):
        if series not in rows:
            failures.append(f"persistency: {series} series missing")
            return
    strict = rows["strict"]["ops_per_kstep"]
    buffered = rows["buffered4"]["ops_per_kstep"]
    bar = PERSISTENCY_BUFFERED_BAR * strict
    if buffered < bar:
        failures.append(
            f"persistency: buffered4 ops_per_kstep {buffered:.1f} below "
            f"{PERSISTENCY_BUFFERED_BAR}x strict ({strict:.1f}) — relaxing "
            f"the model no longer buys throughput on the flush-heavy mix"
        )
    else:
        print(
            f"persistency acceptance ok: buffered4 {buffered:.1f} >= "
            f"{PERSISTENCY_BUFFERED_BAR}x strict {strict:.1f} ops/kstep"
        )


def ratchet_persistency(baseline, current, failures):
    base = {
        r["series"]: r["ops_per_kstep"]
        for r in baseline["results"]
        if "ops_per_kstep" in r
    }
    for r in current["results"]:
        key = r.get("series")
        if key not in base or "ops_per_kstep" not in r:
            continue
        floor = PERSISTENCY_TOL * base[key]
        if r["ops_per_kstep"] < floor:
            failures.append(
                f"persistency {key}: ops_per_kstep "
                f"{r['ops_per_kstep']:.1f} < {PERSISTENCY_TOL}x baseline "
                f"{base[key]:.1f}"
            )


def ratchet_logappend(baseline, current, failures):
    base = {
        (r["threads"], r["mode"]): r["mops"]
        for r in baseline["results"]
        if "mops" in r and "mode" in r
    }
    for r in current["results"]:
        key = (r.get("threads"), r.get("mode"))
        if key not in base or "mops" not in r:
            continue
        floor = LOGAPPEND_TOL * base[key]
        if r["mops"] < floor:
            failures.append(
                f"logappend threads={key[0]} mode={key[1]}: "
                f"{r['mops']:.2f} Mops < {LOGAPPEND_TOL}x baseline "
                f"{base[key]:.2f}"
            )


def ratchet_fig2b_measured(baseline, current, failures):
    base = {r["threads"]: r["mops"] for r in baseline["results"] if "mops" in r}
    for r in current["results"]:
        key = r.get("threads")
        if key not in base or "mops" not in r:
            continue
        floor = MEASURED_TOL * base[key]
        if r["mops"] < floor:
            failures.append(
                f"fig2b_measured threads={key}: {r['mops']:.2f} Mops < "
                f"{MEASURED_TOL}x baseline {base[key]:.2f}"
            )


def ratchet_snoopfilter(baseline, current, failures):
    base = {
        r["series"]: r
        for r in baseline["results"]
        if "ops_per_kstep" in r
    }
    for r in current["results"]:
        key = r.get("series")
        if key not in base or "ops_per_kstep" not in r:
            continue
        floor = SNOOPFILTER_TOL * base[key]["ops_per_kstep"]
        if r["ops_per_kstep"] < floor:
            failures.append(
                f"snoopfilter {key}: ops_per_kstep "
                f"{r['ops_per_kstep']:.1f} < {SNOOPFILTER_TOL}x baseline "
                f"{base[key]['ops_per_kstep']:.1f}"
            )
        ceil = SNOOPS_TOL * base[key]["snoops_per_op"]
        if r["snoops_per_op"] > ceil:
            failures.append(
                f"snoopfilter {key}: snoops_per_op "
                f"{r['snoops_per_op']:.3f} > {SNOOPS_TOL}x baseline "
                f"{base[key]['snoops_per_op']:.3f}"
            )


def ratchet_tenants(baseline, current, failures):
    base = {
        r["series"]: r["victim_ops_per_kstep"]
        for r in baseline["results"]
        if "victim_ops_per_kstep" in r
    }
    for r in current["results"]:
        key = r.get("series")
        if key not in base or "victim_ops_per_kstep" not in r:
            continue
        floor = TENANTS_TOL * base[key]
        if r["victim_ops_per_kstep"] < floor:
            failures.append(
                f"tenants {key}: victim_ops_per_kstep "
                f"{r['victim_ops_per_kstep']:.1f} < {TENANTS_TOL}x baseline "
                f"{base[key]:.1f}"
            )


def ratchet_fig2b(baseline, current, failures):
    base = {(r["threads"], r["backend"]): r["mops"] for r in baseline["results"]}
    for r in current["results"]:
        key = (r["threads"], r["backend"])
        if key not in base:
            continue  # new series seed on their first appearance
        floor = FIG2B_TOL * base[key]
        if r["mops"] < floor:
            failures.append(
                f"fig2b {key}: {r['mops']:.2f} Mops < {FIG2B_TOL}x baseline "
                f"{base[key]:.2f}"
            )


def ratchet_ablation_epoch(baseline, current, failures):
    base = {r["ops_per_persist"]: r["snoops_per_op"] for r in baseline["results"]}
    for r in current["results"]:
        key = r["ops_per_persist"]
        if key not in base:
            continue
        ceil = SNOOPS_TOL * base[key]
        if r["snoops_per_op"] > ceil:
            failures.append(
                f"ablation_epoch ops_per_persist={key}: snoops_per_op "
                f"{r['snoops_per_op']:.3f} > {SNOOPS_TOL}x baseline {base[key]:.3f}"
            )


def ratchet_ablation_overlap(baseline, current, failures):
    def legacy(doc):
        return {
            r["epoch_lines"]: r["inline_reduction"]
            for r in doc["results"]
            if "series" not in r
        }

    base = legacy(baseline)
    for lines, reduction in legacy(current).items():
        if lines not in base:
            continue
        floor = REDUCTION_TOL * base[lines]
        if reduction < floor:
            failures.append(
                f"ablation_overlap epoch_lines={lines}: inline_reduction "
                f"{reduction:.1f} < {REDUCTION_TOL}x baseline {base[lines]:.1f}"
            )


def main() -> int:
    if len(sys.argv) != 3:
        print(__doc__)
        return 2
    baseline_dir, current_dir = Path(sys.argv[1]), Path(sys.argv[2])

    failures = []
    ratchets = {
        "fig2b.json": ratchet_fig2b,
        "ablation_epoch.json": ratchet_ablation_epoch,
        "ablation_overlap.json": ratchet_ablation_overlap,
        "tenants.json": ratchet_tenants,
        "snoopfilter.json": ratchet_snoopfilter,
        "fig2b_measured.json": ratchet_fig2b_measured,
        "logappend.json": ratchet_logappend,
        "persistency.json": ratchet_persistency,
        "allocbench.json": ratchet_allocbench,
        "hbmstore.json": ratchet_hbmstore,
    }

    overlap = load(current_dir / "ablation_overlap.json")
    if overlap is None:
        failures.append("current ablation_overlap.json missing")
    else:
        check_free_running_acceptance(overlap, failures)

    tenants = load(current_dir / "tenants.json")
    if tenants is None:
        failures.append("current tenants.json missing")
    else:
        check_tenant_isolation(tenants, failures)

    snoopfilter = load(current_dir / "snoopfilter.json")
    if snoopfilter is None:
        failures.append("current snoopfilter.json missing")
    else:
        check_snoopfilter_acceptance(snoopfilter, failures)

    measured = load(current_dir / "fig2b_measured.json")
    if measured is None:
        failures.append("current fig2b_measured.json missing")
    else:
        check_measured_scaling(measured, failures)

    logappend = load(current_dir / "logappend.json")
    if logappend is None:
        failures.append("current logappend.json missing")
    else:
        check_logappend_scaling(logappend, failures)

    persistency = load(current_dir / "persistency.json")
    if persistency is None:
        failures.append("current persistency.json missing")
    else:
        check_persistency_acceptance(persistency, failures)

    allocbench = load(current_dir / "allocbench.json")
    if allocbench is None:
        failures.append("current allocbench.json missing")
    else:
        check_allocbench_scaling(allocbench, failures)

    hbmstore = load(current_dir / "hbmstore.json")
    if hbmstore is None:
        failures.append("current hbmstore.json missing")
    else:
        check_hbmstore_scaling(hbmstore, failures)

    for name, ratchet in ratchets.items():
        current = load(current_dir / name)
        if current is None:
            failures.append(f"current {name} missing")
            continue
        baseline = load(baseline_dir / name)
        if baseline is None:
            print(f"{name}: no baseline, seeding the ratchet")
            continue
        before = len(failures)
        ratchet(baseline, current, failures)
        if len(failures) == before:
            print(f"{name}: within tolerance of baseline")

    if failures:
        print("\nBENCH RATCHET FAILED:")
        for f in failures:
            print(f"  - {f}")
        return 1
    print("\nbench ratchet passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
