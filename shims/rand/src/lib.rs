//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! Vendors exactly what the workspace uses: the [`Rng`] extension trait
//! (`gen`, `gen_range`, `gen_bool`), [`SeedableRng::seed_from_u64`], and
//! [`rngs::StdRng`]. The generator is xoshiro256** seeded via splitmix64
//! — statistically strong for simulation workloads and fully
//! deterministic per seed, which is all the workload generators need.
//!
//! # Real-thread soundness
//!
//! The shim holds no global or thread-local state — no lazily seeded
//! process RNG, no `thread_rng()` — so there is nothing to race on.
//! [`rngs::StdRng`] is a plain owned struct (`Send`, and trivially
//! `Sync` as there are no interior-mutability cells); the intended
//! multi-thread pattern is one generator per thread, seeded with
//! distinct values. Streams are then deterministic per seed regardless
//! of scheduling, which is what the seeded stress tests rely on.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::Range;

/// Low-level source of randomness.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// A random number generator constructible from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly over their full domain (`rng.gen()`).
pub trait Standard: Sized {
    /// Draws a value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u8 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform bits scaled into [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws a value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                // Debiased multiply-shift (Lemire); span is far below 2^63
                // for every call site, so the bias of a plain modulo would
                // already be negligible — this removes it outright.
                let mut x = rng.next_u64();
                let mut m = (x as u128) * (span as u128);
                if (m as u64) < span {
                    let t = span.wrapping_neg() % span;
                    while (m as u64) < t {
                        x = rng.next_u64();
                        m = (x as u128) * (span as u128);
                    }
                }
                self.start + ((m >> 64) as u64) as $t
            }
        }
    )*};
}

impl_sample_range_uint!(u8, u16, u32, u64, usize);

/// Extension methods every [`RngCore`] gets (the `rand::Rng` surface).
pub trait Rng: RngCore {
    /// Draws a value uniform over the type's full domain.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws a value uniform over `range`.
    fn gen_range<T, Ra: SampleRange<T>>(&mut self, range: Ra) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard generator: xoshiro256** seeded via splitmix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // splitmix64 stream fills the state; all-zero is unreachable.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.s;
            let result = s1.wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s1 << 17;
            let s2 = s2 ^ s0;
            let s3 = s3 ^ s1;
            let s1 = s1 ^ s2;
            let s0 = s0 ^ s3;
            let s2 = s2 ^ t;
            let s3 = s3.rotate_left(45);
            self.s = [s0, s1, s2, s3];
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds_and_covers() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..1000 {
            let v: u64 = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            seen.insert(v);
        }
        assert_eq!(seen.len(), 10, "all values in a small range appear");
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn u8_range_works() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..100 {
            let roll: u8 = rng.gen_range(0..100);
            assert!(roll < 100);
        }
    }

    #[test]
    fn multithread_streams_are_independent_and_deterministic() {
        // One generator per thread (the intended concurrency pattern):
        // each thread's stream must match the single-threaded reference
        // for its seed, no matter how the OS schedules them.
        fn assert_send<T: Send>() {}
        assert_send::<StdRng>();

        let reference: Vec<Vec<u64>> = (0..4u64)
            .map(|t| {
                let mut rng = StdRng::seed_from_u64(100 + t);
                (0..1000).map(|_| rng.next_u64()).collect()
            })
            .collect();
        let handles: Vec<_> = (0..4u64)
            .map(|t| {
                std::thread::spawn(move || {
                    let mut rng = StdRng::seed_from_u64(100 + t);
                    (0..1000).map(|_| rng.next_u64()).collect::<Vec<u64>>()
                })
            })
            .collect();
        for (t, h) in handles.into_iter().enumerate() {
            assert_eq!(h.join().unwrap(), reference[t], "thread {t} stream diverged");
        }
    }
}
