//! Collection strategies (`proptest::collection::vec`).

use std::ops::Range;

use crate::{Strategy, TestRng};

/// Strategy for `Vec<S::Value>` with a sampled length.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.size.sample(rng);
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

/// A vector whose length is drawn from `size` and whose elements are
/// drawn from `element`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    assert!(size.start < size.end, "empty vec size range");
    VecStrategy { element, size }
}
