//! Offline stand-in for the `proptest` crate.
//!
//! Vendors the API subset the workspace's property tests use: the
//! [`proptest!`] macro, [`Strategy`] with `prop_map`, ranges / tuples /
//! [`Just`] / [`any`] / weighted [`prop_oneof!`] strategies,
//! [`collection::vec`], and the `prop_assert*` macros.
//!
//! Differences from real proptest, deliberate for an offline shim:
//! no shrinking (a failing case panics with its full inputs instead of a
//! minimized counterexample) and deterministic per-test seeding (each
//! test name hashes to a seed sequence, so failures reproduce exactly).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::marker::PhantomData;
use std::ops::Range;
use std::rc::Rc;

pub mod collection;

/// Deterministic source of randomness for strategy sampling (splitmix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator seeded from a test identifier and case index, so each
    /// test gets an independent, reproducible stream.
    pub fn for_case(test_id: &str, case: u64) -> Self {
        let mut h = DefaultHasher::new();
        test_id.hash(&mut h);
        case.hash(&mut h);
        TestRng { state: h.finish() | 1 }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Multiply-shift; bias is < 2^-64 × bound, irrelevant for tests.
        (((self.next_u64() as u128) * (bound as u128)) >> 64) as u64
    }
}

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { strategy: self, f }
    }
}

/// A [`Strategy::prop_map`] adaptor.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    strategy: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.strategy.sample(rng))
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);

/// Types with a canonical "anything goes" strategy ([`any`]).
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_uint!(u8, u16, u32, u64, usize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for i64 {
    fn arbitrary(rng: &mut TestRng) -> i64 {
        rng.next_u64() as i64
    }
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone)]
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// A strategy producing any value of `T` (uniform over the full domain).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// A type-erased strategy, so heterogeneous arms can share one type.
#[derive(Clone)]
pub struct BoxedStrategy<V>(Rc<dyn Fn(&mut TestRng) -> V>);

impl<V> std::fmt::Debug for BoxedStrategy<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("BoxedStrategy")
    }
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;

    fn sample(&self, rng: &mut TestRng) -> V {
        (self.0)(rng)
    }
}

/// Erases a strategy's concrete type (used by [`prop_oneof!`]).
pub fn boxed<S: Strategy + 'static>(strategy: S) -> BoxedStrategy<S::Value> {
    BoxedStrategy(Rc::new(move |rng| strategy.sample(rng)))
}

/// A weighted choice among strategies of one value type.
#[derive(Debug, Clone)]
pub struct Union<V> {
    arms: Vec<(u32, BoxedStrategy<V>)>,
}

impl<V> Union<V> {
    /// Builds a union; weights must not all be zero.
    pub fn new(arms: Vec<(u32, BoxedStrategy<V>)>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        assert!(arms.iter().any(|(w, _)| *w > 0), "all weights are zero");
        Union { arms }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn sample(&self, rng: &mut TestRng) -> V {
        let total: u64 = self.arms.iter().map(|(w, _)| *w as u64).sum();
        let mut roll = rng.below(total);
        for (w, s) in &self.arms {
            if roll < *w as u64 {
                return s.sample(rng);
            }
            roll -= *w as u64;
        }
        unreachable!("weighted draw exhausted the arms");
    }
}

/// Runner configuration (construct with struct-update syntax over
/// [`Default`], like real proptest).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each test runs.
    pub cases: u32,
    /// Accepted but unused (no shrinking in the shim).
    pub max_shrink_iters: u32,
    /// Accepted but unused (tests never fork in the shim).
    pub fork: bool,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256, max_shrink_iters: 0, fork: false }
    }
}

/// Why a test case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The property was violated.
    Fail(String),
    /// The inputs were rejected (case is skipped, not failed).
    Reject(String),
}

impl TestCaseError {
    /// A failure with the given reason.
    pub fn fail(reason: impl Into<String>) -> Self {
        TestCaseError::Fail(reason.into())
    }

    /// A rejection with the given reason.
    pub fn reject(reason: impl Into<String>) -> Self {
        TestCaseError::Reject(reason.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Fail(r) => write!(f, "{r}"),
            TestCaseError::Reject(r) => write!(f, "rejected: {r}"),
        }
    }
}

/// Everything a property test usually imports.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Any, BoxedStrategy,
        Just, ProptestConfig, Strategy, TestCaseError,
    };
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `config.cases` sampled cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (config = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let test_id = concat!(module_path!(), "::", stringify!($name));
            for case in 0..config.cases as u64 {
                let mut rng = $crate::TestRng::for_case(test_id, case);
                $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)+
                let inputs = format!(
                    concat!($(stringify!($arg), " = {:?}\n"),+),
                    $(&$arg),+
                );
                let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                match outcome {
                    Ok(()) => {}
                    Err($crate::TestCaseError::Reject(_)) => {}
                    Err($crate::TestCaseError::Fail(reason)) => panic!(
                        "property failed at {} case {}: {}\ninputs:\n{}",
                        test_id, case, reason, inputs
                    ),
                }
            }
        }
    )*};
}

/// Weighted (`w => strategy`) or uniform choice among strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$(($weight as u32, $crate::boxed($strat))),+])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$((1u32, $crate::boxed($strat))),+])
    };
}

/// Asserts a condition inside a property test body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                concat!("assertion failed: ", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Asserts two values are equal inside a property test body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), l, r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+), l, r
            )));
        }
    }};
}

/// Asserts two values differ inside a property test body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} != {}\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                l
            )));
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::for_case("ranges", 0);
        for _ in 0..1000 {
            let v = (3u64..17).sample(&mut rng);
            assert!((3..17).contains(&v));
        }
    }

    #[test]
    fn union_respects_zero_weight() {
        let u = prop_oneof![1 => Just(1u8), 0 => Just(2u8)];
        let mut rng = TestRng::for_case("union", 0);
        for _ in 0..100 {
            assert_eq!(u.sample(&mut rng), 1);
        }
    }

    #[test]
    fn sampling_is_deterministic_per_case() {
        let s = collection::vec((0u64..10, any::<u64>()), 1..20);
        let mut a = TestRng::for_case("det", 3);
        let mut b = TestRng::for_case("det", 3);
        assert_eq!(s.sample(&mut a), s.sample(&mut b));
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

        #[test]
        fn the_macro_itself_works(x in 0u64..100, v in collection::vec(any::<u8>(), 0..8)) {
            prop_assert!(x < 100);
            prop_assert!(v.len() < 8, "len {}", v.len());
            prop_assert_eq!(x, x);
            prop_assert_ne!(x, x + 1);
        }
    }

    #[test]
    #[should_panic(expected = "property failed")]
    fn failures_panic_with_inputs() {
        proptest! {
            #![proptest_config(ProptestConfig { cases: 4, ..ProptestConfig::default() })]
            fn always_fails(x in 0u64..4) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        always_fails();
    }
}
