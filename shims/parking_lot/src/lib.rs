//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no registry access, so this crate vendors
//! the small API surface the workspace uses: [`Mutex`] and [`RwLock`]
//! with `parking_lot`'s poison-free signatures (`lock()` returns the
//! guard directly), implemented over `std::sync`. A poisoned std lock —
//! a panic while holding the guard — is transparently recovered, which
//! matches `parking_lot`'s behaviour of not propagating poison.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion primitive with `parking_lot`'s poison-free API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex { inner: std::sync::Mutex::new(value) }
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Attempts to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|p| p.into_inner())
    }
}

/// A reader-writer lock with `parking_lot`'s poison-free API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new lock protecting `value`.
    pub const fn new(value: T) -> Self {
        RwLock { inner: std::sync::RwLock::new(value) }
    }

    /// Consumes the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|p| p.into_inner())
    }

    /// Acquires exclusive write access, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|p| p.into_inner())
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|p| p.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn poisoned_lock_recovers() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = std::sync::Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison the lock");
        })
        .join();
        assert_eq!(*m.lock(), 0, "lock is usable after a panic");
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }
}
