//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no registry access, so this crate vendors
//! the small API surface the workspace uses: [`Mutex`] and [`RwLock`]
//! with `parking_lot`'s poison-free signatures (`lock()` returns the
//! guard directly), implemented over `std::sync`. A poisoned std lock —
//! a panic while holding the guard — is transparently recovered, which
//! matches `parking_lot`'s behaviour of not propagating poison.
//!
//! # Real-thread soundness
//!
//! The shim adds no synchronization of its own: every method delegates
//! to the `std::sync` primitive, so mutual exclusion, `Send`/`Sync`
//! bounds, and the release/acquire edges between an unlock and the next
//! lock are exactly std's. The differences from the real `parking_lot`
//! are quality-of-implementation only, not soundness: no lock elision or
//! adaptive spinning, fairness is whatever the OS provides, guards are
//! the std guard types (so `Mutex` guards are `!Send`, which the real
//! crate also defaults to), and `Condvar` / timed waits are not
//! provided because the workspace never blocks on a lock-side condition
//! — cross-thread rendezvous goes through the device's epoch commit
//! instead. Poison recovery is safe for this workspace because every
//! structure guarded by these locks is crash-consistent by design: a
//! panicking writer leaves state no worse than the power failure the
//! simulator exists to model.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion primitive with `parking_lot`'s poison-free API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex { inner: std::sync::Mutex::new(value) }
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Attempts to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|p| p.into_inner())
    }
}

/// A reader-writer lock with `parking_lot`'s poison-free API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new lock protecting `value`.
    pub const fn new(value: T) -> Self {
        RwLock { inner: std::sync::RwLock::new(value) }
    }

    /// Consumes the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|p| p.into_inner())
    }

    /// Acquires exclusive write access, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|p| p.into_inner())
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|p| p.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn poisoned_lock_recovers() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = std::sync::Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison the lock");
        })
        .join();
        assert_eq!(*m.lock(), 0, "lock is usable after a panic");
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }

    #[test]
    fn mutex_multithread_smoke() {
        // 8 threads × 1000 increments: no lost updates under real
        // contention, and try_lock never hands out a second guard.
        let m = std::sync::Arc::new(Mutex::new(0u64));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let m = std::sync::Arc::clone(&m);
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    match m.try_lock() {
                        Some(mut g) => *g += 1,
                        None => *m.lock() += 1,
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 8 * 1000);
    }

    #[test]
    fn rwlock_multithread_smoke() {
        // Concurrent readers never observe a torn pair; the writer's
        // updates stay atomic with respect to read guards.
        let l = std::sync::Arc::new(RwLock::new((0u64, 0u64)));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let l = std::sync::Arc::clone(&l);
            handles.push(std::thread::spawn(move || {
                for _ in 0..2000 {
                    let g = l.read();
                    assert_eq!(g.0, g.1, "write guard leaked a torn pair");
                }
            }));
        }
        {
            let l = std::sync::Arc::clone(&l);
            handles.push(std::thread::spawn(move || {
                for i in 1..=2000u64 {
                    let mut g = l.write();
                    g.0 = i;
                    g.1 = i;
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*l.read(), (2000, 2000));
    }
}
