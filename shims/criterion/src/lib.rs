//! Offline stand-in for the `criterion` crate.
//!
//! Implements the macro and builder surface the workspace's benches use
//! (`criterion_group!`/`criterion_main!`, benchmark groups, throughput,
//! `iter`/`iter_batched`) with plain wall-clock timing and a text report.
//! No statistics engine: each benchmark is timed over a short fixed
//! window. When invoked by `cargo test` (which runs `harness = false`
//! bench targets with a `--test` flag), every benchmark executes exactly
//! one iteration so the suite stays fast.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How long each benchmark is measured for in full (bench) mode.
const MEASURE_WINDOW: Duration = Duration::from_millis(120);

/// Top-level harness state shared by all groups.
pub struct Criterion {
    /// True when run under `cargo test`: one iteration per bench, no timing.
    smoke_test: bool,
}

impl Criterion {
    /// Builds the harness from the process CLI arguments.
    ///
    /// Cargo passes `--test` when a `harness = false` bench target is run
    /// by `cargo test`; everything else (`--bench`, filters) is accepted
    /// and ignored.
    pub fn from_args() -> Self {
        let smoke_test = std::env::args().any(|a| a == "--test");
        Criterion { smoke_test }
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        if !self.smoke_test {
            println!("\n== {name} ==");
        }
        BenchmarkGroup { criterion: self, name, throughput: None }
    }

    /// Benchmarks a closure outside of any group.
    pub fn bench_function(
        &mut self,
        id: impl Display,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let report = run_bench(self.smoke_test, &mut f);
        if !self.smoke_test {
            print_line(&id.to_string(), &report, None);
        }
        self
    }

    /// Prints the closing summary (no-op in the shim).
    pub fn final_summary(&self) {}
}

/// Units for reporting how much work one iteration does.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A parameterised benchmark identifier (`BenchmarkId::new("x", 42)`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    /// An identifier combining a function name and a parameter value.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId { full: format!("{name}/{parameter}") }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.full)
    }
}

/// How `iter_batched` amortises setup cost (ignored by the shim's timer).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// A named collection of benchmarks sharing throughput settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    #[allow(dead_code)]
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Declares how much work one iteration of subsequent benches does.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Benchmarks a closure under the given name.
    pub fn bench_function(
        &mut self,
        id: impl Display,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let report = run_bench(self.criterion.smoke_test, &mut f);
        if !self.criterion.smoke_test {
            print_line(&id.to_string(), &report, self.throughput);
        }
        self
    }

    /// Benchmarks a closure that receives a borrowed input value.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let report = run_bench(self.criterion.smoke_test, &mut |b: &mut Bencher| f(b, input));
        if !self.criterion.smoke_test {
            print_line(&id.to_string(), &report, self.throughput);
        }
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Timing results for one benchmark.
struct Report {
    ns_per_iter: f64,
    iters: u64,
}

/// Passed to each benchmark closure to drive the measured routine.
pub struct Bencher {
    smoke_test: bool,
    total: Duration,
    iters: u64,
}

impl Bencher {
    /// Times `routine` repeatedly until the measurement window closes.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        let deadline = Instant::now() + MEASURE_WINDOW;
        loop {
            let start = Instant::now();
            black_box(routine());
            self.total += start.elapsed();
            self.iters += 1;
            if self.smoke_test || Instant::now() >= deadline {
                break;
            }
        }
    }

    /// Times `routine` over fresh inputs from `setup`, excluding setup time.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        let deadline = Instant::now() + MEASURE_WINDOW;
        loop {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.total += start.elapsed();
            self.iters += 1;
            if self.smoke_test || Instant::now() >= deadline {
                break;
            }
        }
    }
}

fn run_bench(smoke_test: bool, f: &mut impl FnMut(&mut Bencher)) -> Report {
    let mut bencher = Bencher { smoke_test, total: Duration::ZERO, iters: 0 };
    f(&mut bencher);
    let iters = bencher.iters.max(1);
    Report { ns_per_iter: bencher.total.as_nanos() as f64 / iters as f64, iters }
}

fn print_line(id: &str, report: &Report, throughput: Option<Throughput>) {
    let rate = throughput.map(|t| {
        let per_sec = |units: u64| units as f64 * 1e9 / report.ns_per_iter.max(1.0);
        match t {
            Throughput::Elements(n) => format!("  {:>12.0} elem/s", per_sec(n)),
            Throughput::Bytes(n) => format!("  {:>12.0} B/s", per_sec(n)),
        }
    });
    println!(
        "{id:<44} {:>12.1} ns/iter  ({} iters){}",
        report.ns_per_iter,
        report.iters,
        rate.unwrap_or_default()
    );
}

/// Bundles benchmark functions into a group callable by `criterion_main!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(criterion: &mut $crate::Criterion) {
            $( $target(criterion); )+
        }
    };
}

/// Generates `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut criterion = $crate::Criterion::from_args();
            $( $group(&mut criterion); )+
            criterion.final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_mode_runs_exactly_once() {
        let mut calls = 0u32;
        let report = run_bench(true, &mut |b: &mut Bencher| b.iter(|| calls += 1));
        assert_eq!(calls, 1);
        assert_eq!(report.iters, 1);
    }

    #[test]
    fn iter_batched_uses_fresh_inputs() {
        let mut next = 0u32;
        let mut seen = Vec::new();
        run_bench(true, &mut |b: &mut Bencher| {
            b.iter_batched(
                || {
                    next += 1;
                    next
                },
                |v| seen.push(v),
                BatchSize::SmallInput,
            )
        });
        assert_eq!(seen, vec![1]);
    }

    #[test]
    fn benchmark_id_formats_name_and_param() {
        assert_eq!(BenchmarkId::new("undo", 64).to_string(), "undo/64");
    }
}
