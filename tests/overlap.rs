//! Non-blocking persist (§6 "Looking Forward"): epochs overlap — the
//! application continues into epoch N+1 while epoch N drains; durability
//! of N holds from the moment it commits; recovery always lands on the
//! newest *committed* epoch, even with interleaved cross-epoch writes to
//! the same lines.

use libpax::{Heap, MemSpace, PHashMap, PaxConfig, PaxError, PaxPool};
use pax_pm::{PmError, PoolConfig, LINE_SIZE};

fn config() -> PaxConfig {
    PaxConfig::default()
        .with_pool(PoolConfig::small().with_data_bytes(8 << 20).with_log_bytes(64 << 20))
}

/// A pool whose undo log holds only `slots` entries (2 lines per entry).
fn tiny_log_config(slots: usize) -> PaxConfig {
    PaxConfig::default().with_pool(
        PoolConfig::small().with_data_bytes(1 << 20).with_log_bytes(slots * 2 * LINE_SIZE),
    )
}

#[test]
fn async_persist_returns_immediately_and_commits_later() {
    let pool = PaxPool::create(config()).unwrap();
    let vpm = pool.vpm();
    for i in 0..32u64 {
        vpm.write_u64(i * 64, 1).unwrap();
    }
    let epoch = pool.persist_async().unwrap();
    assert_eq!(epoch, 1);
    assert_eq!(pool.persist_pending().unwrap(), Some(1));
    // Not yet committed:
    assert_eq!(pool.committed_epoch().unwrap(), 0);

    // The application keeps working; background progress happens on its
    // accesses, plus explicit polls.
    let mut committed = None;
    for i in 0..200u64 {
        vpm.write_u64((64 + i % 8) * 64, i).unwrap();
        if committed.is_none() {
            committed = pool.persist_poll().unwrap();
        }
    }
    if committed.is_none() {
        pool.persist_wait().unwrap();
    }
    assert_eq!(pool.committed_epoch().unwrap(), 1);
    assert_eq!(pool.persist_pending().unwrap(), None);
}

#[test]
fn work_during_drain_lands_in_the_next_epoch() {
    let pool = PaxPool::create(config()).unwrap();
    let vpm = pool.vpm();
    vpm.write_u64(0, 10).unwrap();
    pool.persist_async().unwrap(); // epoch 1 draining

    // Epoch 2 work, interleaved with the drain:
    vpm.write_u64(64, 20).unwrap();
    pool.persist_wait().unwrap(); // epoch 1 committed
    assert_eq!(pool.committed_epoch().unwrap(), 1);

    // Crash now: epoch 2 is lost, epoch 1 survives.
    let pm = pool.crash().unwrap();
    let pool = PaxPool::open(pm, config()).unwrap();
    let vpm = pool.vpm();
    assert_eq!(vpm.read_u64(0).unwrap(), 10);
    assert_eq!(vpm.read_u64(64).unwrap(), 0, "epoch-2 write must be rolled back");
}

#[test]
fn cross_epoch_rewrites_of_the_same_line_are_ordered() {
    // The hard case from §6: the same line is modified in epoch N (value
    // A, draining) and again in epoch N+1 (value B) before N commits. The
    // pre-image logged for N+1 must be A (not the pre-N value), and the
    // final PM state must be B after N+1 commits.
    let pool = PaxPool::create(config()).unwrap();
    let vpm = pool.vpm();
    vpm.write_u64(0, 0xA).unwrap();
    pool.persist_async().unwrap(); // epoch 1 draining with value A

    vpm.write_u64(0, 0xB).unwrap(); // epoch 2 rewrite, drain still pending
    pool.persist_wait().unwrap(); // epoch 1 commits

    // Crash before epoch 2 persists: must recover value A.
    let pm = pool.crash().unwrap();
    let pool = PaxPool::open(pm, config()).unwrap();
    let vpm = pool.vpm();
    assert_eq!(vpm.read_u64(0).unwrap(), 0xA, "epoch-2 pre-image must be the epoch-1 value");

    // And the full pipeline: rewrite + async persist of both epochs.
    vpm.write_u64(0, 0xC).unwrap();
    pool.persist_async().unwrap();
    vpm.write_u64(0, 0xD).unwrap();
    pool.persist_wait().unwrap();
    pool.persist().unwrap(); // commit the D epoch synchronously
    let pm = pool.crash().unwrap();
    let pool = PaxPool::open(pm, config()).unwrap();
    assert_eq!(pool.vpm().read_u64(0).unwrap(), 0xD);
}

#[test]
fn crash_while_draining_recovers_to_previous_epoch() {
    let pool = PaxPool::create(config()).unwrap();
    let vpm = pool.vpm();
    vpm.write_u64(0, 1).unwrap();
    pool.persist().unwrap(); // epoch 1, committed

    for i in 0..16u64 {
        vpm.write_u64(i * 64, 100 + i).unwrap();
    }
    pool.persist_async().unwrap(); // epoch 2 draining
                                   // Crash before the drain completes (no polls issued).
    let pm = pool.crash().unwrap();
    let pool = PaxPool::open(pm, config()).unwrap();
    assert_eq!(pool.committed_epoch().unwrap(), 1);
    let vpm = pool.vpm();
    assert_eq!(vpm.read_u64(0).unwrap(), 1);
    for i in 1..16u64 {
        assert_eq!(vpm.read_u64(i * 64).unwrap(), 0, "line {i}");
    }
}

#[test]
fn overlapping_epochs_with_structures() {
    let pool = PaxPool::create(config()).unwrap();
    let map: PHashMap<u64, u64, _, Heap<_>> =
        PHashMap::attach(Heap::attach(pool.vpm()).unwrap()).unwrap();

    let mut committed_lens = Vec::new();
    for batch in 0..6u64 {
        for k in 0..50u64 {
            map.insert(batch * 100 + k, batch).unwrap();
        }
        pool.persist_async().unwrap();
        committed_lens.push((batch + 1) * 50);
    }
    pool.persist_wait().unwrap();
    assert_eq!(pool.committed_epoch().unwrap(), 6);

    let pm = pool.crash().unwrap();
    let pool = PaxPool::open(pm, config()).unwrap();
    let map: PHashMap<u64, u64, _, Heap<_>> =
        PHashMap::attach(Heap::attach(pool.vpm()).unwrap()).unwrap();
    assert_eq!(map.len().unwrap(), 300);
    assert_eq!(map.get(523).unwrap(), Some(5));
}

#[test]
fn sync_persist_flushes_a_pending_drain_first() {
    let pool = PaxPool::create(config()).unwrap();
    let vpm = pool.vpm();
    vpm.write_u64(0, 1).unwrap();
    pool.persist_async().unwrap(); // epoch 1 draining
    vpm.write_u64(64, 2).unwrap(); // epoch 2
    let epoch = pool.persist().unwrap(); // must commit 1 then 2
    assert_eq!(epoch, 2);
    assert_eq!(pool.committed_epoch().unwrap(), 2);
    assert_eq!(pool.persist_pending().unwrap(), None);
}

#[test]
fn continuous_overlapping_epochs_recycle_the_log() {
    // Regression: `persist_poll` used to return committed epochs' log
    // slots only once the device was completely idle (empty epoch log AND
    // no pending drain). Under continuous overlapped traffic that moment
    // never arrives, so cumulative appends eventually crossed the log
    // capacity and writes died with a spurious `LogFull`. The fix
    // recycles each committed epoch's slots up to its drain watermark.
    let pool = PaxPool::create(tiny_log_config(16)).unwrap();
    let vpm = pool.vpm();
    // 20 rounds × up to 7 appends ≫ 16 slots: only recycling keeps this
    // alive (the pre-fix code failed around round 3).
    for round in 0..20u64 {
        for i in 0..6u64 {
            vpm.write_u64(i * 64, round * 10 + i).unwrap();
        }
        pool.persist_async().unwrap();
        // Next-epoch traffic while the drain is in flight keeps the
        // device from ever going idle.
        vpm.write_u64((6 + round % 4) * 64, round).unwrap();
        pool.persist_wait().unwrap();
    }
    assert!(pool.committed_epoch().unwrap() >= 20);
    for i in 0..6u64 {
        assert_eq!(vpm.read_u64(i * 64).unwrap(), 19 * 10 + i);
    }
}

#[test]
fn oversized_single_epoch_still_reports_log_full() {
    // The recycling fix must not erode the capacity guard: one epoch
    // touching more distinct lines than the log holds is a real overflow.
    let pool = PaxPool::create(tiny_log_config(16)).unwrap();
    let vpm = pool.vpm();
    let mut err = None;
    for i in 0..64u64 {
        if let Err(e) = vpm.write_u64(i * 64, i) {
            err = Some(e);
            break;
        }
    }
    match err {
        Some(PaxError::Pm(PmError::LogFull { capacity_entries })) => {
            assert_eq!(capacity_entries, 16);
        }
        other => panic!("expected LogFull, got {other:?}"),
    }
}

#[test]
fn free_running_ticks_drain_an_async_persist_without_traffic() {
    use pax_device::DeviceConfig;

    // Foreground requests never pump (interval usize::MAX): the only
    // background progress is the virtual-time scheduler — the decoupled
    // "device makes progress on its own" deployment.
    let free_running =
        config().with_device(DeviceConfig::default().with_log_pump_interval(usize::MAX));
    let pool = PaxPool::create(free_running).unwrap();
    let vpm = pool.vpm();
    for i in 0..32u64 {
        vpm.write_u64(i * 64, i + 7).unwrap();
    }
    let epoch = pool.persist_async().unwrap();
    assert_eq!(pool.committed_epoch().unwrap(), 0, "nothing committed yet");

    // No further application traffic, no polls: ticks alone must flush
    // the log, write everything back, and commit (bounded for safety).
    let mut ticks_needed = 0u64;
    while pool.persist_pending().unwrap().is_some() {
        pool.run_device(1).unwrap();
        ticks_needed += 1;
        assert!(ticks_needed < 10_000, "drain must converge");
    }
    assert_eq!(pool.committed_epoch().unwrap(), epoch);

    // The committed snapshot is the real thing: it survives a crash.
    let pm = pool.crash().unwrap();
    let pool = PaxPool::open(pm, config()).unwrap();
    let vpm = pool.vpm();
    for i in 0..32u64 {
        assert_eq!(vpm.read_u64(i * 64).unwrap(), i + 7, "line {i}");
    }
}

#[test]
fn empty_async_epoch_commits() {
    let pool = PaxPool::create(config()).unwrap();
    let e = pool.persist_async().unwrap();
    pool.persist_wait().unwrap();
    assert_eq!(pool.committed_epoch().unwrap(), e);
}
