//! Differential crash-fuzz across persistency models.
//!
//! One seeded schedule of writes / epoch closes / device ticks runs under
//! every [`PersistencyModel`] with the crash clock armed at a chosen
//! durable-write step. Each model must then honour its documented
//! recovery contract:
//!
//! * **Strict** — no completed store is ever rolled back: the recovered
//!   image is exactly the state after the last store that returned.
//! * **Epoch** — every `persist()` that returned is durable; a crash
//!   loses at most the open epoch.
//! * **BufferedEpoch(K)** — a close returns before retiring; a crash
//!   loses at most the K buffered closes (plus the open epoch).
//!
//! And one contract is universal: the recovered image must be a
//! *prefix-closed cut* of epoch history — byte-identical to the state at
//! the moment the recovered epoch closed, never a mix.

use std::collections::HashMap;

use libpax::{MemSpace, PaxConfig, PaxPool, PersistencyModel};
use pax_pm::{PoolConfig, LINE_SIZE};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const SPAN_LINES: u64 = 48;

const MODELS: [PersistencyModel; 4] = [
    PersistencyModel::Strict,
    PersistencyModel::Epoch,
    PersistencyModel::buffered(2),
    PersistencyModel::buffered(4),
];

fn config(model: PersistencyModel) -> PaxConfig {
    // The log region stays far larger than any schedule, so `LogFull`
    // never forces an implicit close to interfere with the model under
    // test.
    PaxConfig::default()
        .with_pool(PoolConfig::small().with_data_bytes(1 << 20).with_log_bytes(8 << 20))
        .with_persistency(model)
}

/// One step of a crash-fuzz schedule.
#[derive(Debug, Clone, Copy)]
enum Step {
    /// Store `value` to line `line` (aligned u64, single line).
    Write(u64, u64),
    /// Close the epoch: `persist()` — synchronous under strict/epoch,
    /// an asynchronous close under buffered-epoch.
    Close,
    /// Advance the device's virtual-time scheduler.
    Tick(u64),
}

/// What one armed run recovered, plus the run's step count so sweeps can
/// cover the whole schedule.
struct RunOut {
    crashed: bool,
    steps_taken: u64,
    image: Vec<u64>,
}

/// Runs `steps` under `model`, crashing at durable-write step `arm` (or
/// never, when `None`), then recovers and checks every contract the
/// model documents. Returns an error string describing the first
/// violated contract — the proptest shrinker minimises the schedule
/// against it.
fn run_and_check(
    model: PersistencyModel,
    steps: &[Step],
    arm: Option<u64>,
) -> std::result::Result<RunOut, String> {
    let pool = PaxPool::create(config(model)).map_err(|e| format!("create: {e}"))?;
    let vpm = pool.vpm();
    let clock = pool.crash_clock().map_err(|e| format!("clock: {e}"))?;
    if let Some(offset) = arm {
        clock.arm(clock.steps_taken() + offset);
    }

    let mut state = vec![0u64; SPAN_LINES as usize];
    // Epoch id → the write-history state when that epoch closed. Seeded
    // with the fresh pool's committed epoch (0, the empty image): every
    // legal recovery point must appear in this map.
    let mut at_close: HashMap<u64, Vec<u64>> = HashMap::new();
    at_close.insert(0, state.clone());
    // The model's floor: the newest epoch whose durability the API
    // already promised the caller (synchronous commits under strict and
    // epoch; under buffered the promise is weaker, `close - k`).
    let mut last_ok_close: u64 = 0;
    let mut crashed = false;

    for step in steps {
        let r: libpax::Result<()> = match *step {
            Step::Write(line, value) => match vpm.write_u64(line * LINE_SIZE as u64, value) {
                Ok(()) => {
                    state[line as usize] = value;
                    if model.persist_per_store() {
                        // Strict: the store's own epoch just committed.
                        let e = pool.committed_epoch().map_err(|e| format!("epoch: {e}"))?;
                        at_close.insert(e, state.clone());
                        last_ok_close = last_ok_close.max(e);
                    }
                    Ok(())
                }
                Err(e) => Err(e),
            },
            Step::Close => match pool.persist() {
                Ok(e) => {
                    at_close.insert(e, state.clone());
                    last_ok_close = last_ok_close.max(e);
                    Ok(())
                }
                Err(e) => Err(e),
            },
            Step::Tick(n) => pool.run_device(n).map(|_| ()),
        };
        if r.is_err() {
            crashed = true;
            break;
        }
    }
    if arm.is_none() {
        // Unarmed runs settle completely: close the tail and retire every
        // buffered epoch, so the recovered image must equal the full
        // write history under every model.
        let e = pool.persist().map_err(|e| format!("final persist: {e}"))?;
        at_close.insert(e, state.clone());
        last_ok_close = last_ok_close.max(e);
        pool.persist_wait().map_err(|e| format!("persist_wait: {e}"))?;
    }
    let steps_taken = clock.steps_taken();

    let pm = pool.crash().map_err(|e| format!("crash: {e}"))?;
    let pool = PaxPool::open(pm, config(model)).map_err(|e| format!("open: {e}"))?;
    let committed = pool.committed_epoch().map_err(|e| format!("committed: {e}"))?;
    let report = pool.recovery_report().map_err(|e| format!("report: {e}"))?;
    let vpm = pool.vpm();
    let image: Vec<u64> = (0..SPAN_LINES)
        .map(|i| vpm.read_u64(i * LINE_SIZE as u64))
        .collect::<libpax::Result<_>>()
        .map_err(|e| format!("read back: {e}"))?;

    // Universal contract: recovery lands on a prefix-closed cut.
    let expected = at_close.get(&committed).ok_or(format!(
        "[{model}] recovered epoch {committed} was never a close point (closes: {:?})",
        {
            let mut k: Vec<&u64> = at_close.keys().collect();
            k.sort();
            k
        }
    ))?;
    if &image != expected {
        return Err(format!(
            "[{model}] recovered image is not the epoch-{committed} snapshot:\n got {image:?}\n want {expected:?}"
        ));
    }

    // Per-model floor: how far behind the newest promised close the
    // recovery point may legally fall. Strict and epoch commit
    // synchronously before the call returns, so they promise the close
    // itself; buffered-epoch only promises `close − k`.
    let allowed_loss = match model {
        PersistencyModel::BufferedEpoch { k } => k as u64,
        _ => 0,
    };
    if committed + allowed_loss < last_ok_close {
        return Err(format!(
            "[{model}] rollback broke the floor: committed {committed}, newest returned close \
             {last_ok_close}, allowed loss {allowed_loss}"
        ));
    }

    // The recovery report's measured gap obeys the model's bound (+1 for
    // the open epoch a crash always forfeits).
    let bound = model.rollback_bound() + 1;
    if report.rollback_gap > bound {
        return Err(format!(
            "[{model}] rollback gap {} exceeds the model bound {bound}",
            report.rollback_gap
        ));
    }
    if !crashed && arm.is_none() && (committed != last_ok_close || image != state) {
        return Err(format!(
            "[{model}] settled run must recover its full history: committed {committed} vs \
             {last_ok_close}"
        ));
    }

    Ok(RunOut { crashed, steps_taken, image })
}

/// A seeded schedule for the whole-schedule sweep: a write-heavy stream
/// with a close every 6 ops and a burst of ticks every 5.
fn seeded_schedule(seed: u64, ops: usize) -> Vec<Step> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut steps = Vec::with_capacity(ops + ops / 3);
    for i in 0..ops {
        steps.push(Step::Write(rng.gen_range(0..SPAN_LINES), rng.gen_range(1..u64::MAX)));
        if i % 6 == 5 {
            steps.push(Step::Close);
        }
        if i % 5 == 4 {
            steps.push(Step::Tick(rng.gen_range(1..4)));
        }
    }
    steps
}

/// ≥3 seeds × whole-schedule crash sweeps × all four models: every
/// durable-write step of the schedule (sampled at a fixed stride) is a
/// crash point, and every model must keep its contract at all of them.
#[test]
fn whole_schedule_crash_sweep_holds_every_model_contract() {
    for seed in [3u64, 17, 291] {
        let steps = seeded_schedule(seed, 36);
        let mut settled_images: Vec<Vec<u64>> = Vec::new();
        for model in MODELS {
            // Unarmed pass: measures the schedule's step count and pins
            // the settled image.
            let base = run_and_check(model, &steps, None).unwrap();
            assert!(!base.crashed);
            settled_images.push(base.image);
            // Sweep armed crash points across the whole schedule (stride
            // keeps the debug-build run time in check; offset past the
            // end exercises the no-crash path under arming too).
            let stride = (base.steps_taken / 24).max(1);
            let mut offset = 0;
            while offset <= base.steps_taken + stride {
                if let Err(msg) = run_and_check(model, &steps, Some(offset)) {
                    panic!("seed {seed} crash@{offset}: {msg}");
                }
                offset += stride;
            }
        }
        // Differential: with no crash, the models are semantically
        // interchangeable — identical settled images.
        for img in &settled_images[1..] {
            assert_eq!(
                img, &settled_images[0],
                "seed {seed}: settled images diverged across models"
            );
        }
    }
}

fn step_strategy() -> impl Strategy<Value = Step> {
    prop_oneof![
        6 => (0u64..SPAN_LINES, 1u64..u64::MAX).prop_map(|(l, v)| Step::Write(l, v)),
        2 => Just(Step::Close),
        2 => (1u64..4).prop_map(Step::Tick),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Arbitrary schedules × arbitrary crash points × all four models;
    /// failures shrink to a minimal step trace.
    #[test]
    fn differential_crash_fuzz_respects_every_model_contract(
        steps in proptest::collection::vec(step_strategy(), 1..60),
        crash_offset in 0u64..350,
    ) {
        for model in MODELS {
            if let Err(msg) = run_and_check(model, &steps, Some(crash_offset)) {
                return Err(TestCaseError::fail(msg));
            }
        }
    }

    /// Buffered closes eventually retire: driving the device with enough
    /// ticks after K closes commits them all, and the committed epoch is
    /// exactly the newest close.
    #[test]
    fn buffered_closes_retire_in_order(
        writes in proptest::collection::vec((0u64..SPAN_LINES, 1u64..u64::MAX), 4..24),
        k in 2usize..5,
    ) {
        let model = PersistencyModel::buffered(k);
        let pool = PaxPool::create(config(model)).unwrap();
        let vpm = pool.vpm();
        let mut closes = Vec::new();
        for chunk in writes.chunks(3) {
            for (line, v) in chunk {
                vpm.write_u64(line * LINE_SIZE as u64, *v).unwrap();
            }
            closes.push(pool.persist().unwrap());
        }
        // Closes are distinct, increasing epochs.
        for w in closes.windows(2) {
            prop_assert!(w[0] < w[1], "closes must be ordered: {:?}", closes);
        }
        // The queue never promises more than K outstanding epochs.
        let committed = pool.committed_epoch().unwrap();
        let newest = *closes.last().unwrap();
        prop_assert!(
            committed + k as u64 >= newest,
            "device holds {} un-retired closes, cap {k}", newest - committed
        );
        pool.persist_wait().unwrap();
        prop_assert_eq!(pool.committed_epoch().unwrap(), newest);
    }
}
