//! Whole-system flows: the Listing 1 programming model, pool files on
//! disk, device metrics plausibility, and the §3.1 access paths.

use libpax::{HwSnapshotter, MemSpace, PHashMap, PaxConfig, PaxPool, Persistent};
use pax_pm::PoolConfig;

fn config() -> PaxConfig {
    PaxConfig::default()
        .with_pool(PoolConfig::small().with_data_bytes(8 << 20).with_log_bytes(32 << 20))
}

#[test]
fn listing_1_programming_model() {
    // Line-for-line the paper's Listing 1, in working code.
    let allocator = HwSnapshotter::create(config()).unwrap(); // map_pool
    let persistent_ht: Persistent<PHashMap<u64, u64>> = Persistent::new(&allocator).unwrap();
    persistent_ht.insert(1, 100).unwrap();
    assert_eq!(persistent_ht.get(1).unwrap(), Some(100)); // "Key 1 = 100"
    persistent_ht.insert(2, 200).unwrap();
    let epoch = allocator.persist().unwrap();
    assert_eq!(epoch, 1);
}

#[test]
fn pool_file_lifecycle_across_processes() {
    let dir = std::env::temp_dir().join("pax-e2e");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("lifecycle.pool");
    let _ = std::fs::remove_file(&path);

    // "Process 1": create, populate, persist, save.
    {
        let snap = HwSnapshotter::map_pool(&path, config()).unwrap();
        let ht: Persistent<PHashMap<u64, u64>> = Persistent::new(&snap).unwrap();
        for k in 0..100 {
            ht.insert(k, k * 2).unwrap();
        }
        snap.persist().unwrap();
        ht.insert(7777, 1).unwrap(); // unpersisted: must not survive
        snap.pool().save_file(&path).unwrap();
    }

    // "Process 2": map the same file; recovery is implicit.
    {
        let snap = HwSnapshotter::map_pool(&path, config()).unwrap();
        let ht: Persistent<PHashMap<u64, u64>> = Persistent::new(&snap).unwrap();
        assert_eq!(ht.len().unwrap(), 100);
        assert_eq!(ht.get(50).unwrap(), Some(100));
        assert_eq!(ht.get(7777).unwrap(), None);
    }
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn cacheability_mostly_bypasses_the_device() {
    // §3.2: "vPM is cacheable, so most operations are performed without
    // consulting the device at all."
    let pool = PaxPool::create(config()).unwrap();
    let vpm = pool.vpm();
    vpm.write_u64(0, 1).unwrap();
    let after_first = pool.device_metrics().unwrap().total_messages();
    for _ in 0..1_000 {
        vpm.read_u64(0).unwrap();
        vpm.write_u64(0, 2).unwrap();
    }
    let after_loop = pool.device_metrics().unwrap().total_messages();
    assert!(
        after_loop - after_first <= 4,
        "cached accesses kept consulting the device: {} extra messages",
        after_loop - after_first
    );
}

#[test]
fn stores_are_acknowledged_before_log_durability() {
    // §3.2's asynchrony: the host proceeds while entries are pending.
    let pool = PaxPool::create(config()).unwrap();
    let vpm = pool.vpm();
    for i in 0..64u64 {
        vpm.write_u64(i * 64, i).unwrap();
    }
    let m = pool.device_metrics().unwrap();
    assert_eq!(m.undo_entries, 64);
    // Nothing in the op path waited for a log flush:
    assert_eq!(m.forced_log_flushes, 0);
}

#[test]
fn persist_downgrades_and_collects_host_lines() {
    let pool = PaxPool::create(config()).unwrap();
    let vpm = pool.vpm();
    for i in 0..16u64 {
        vpm.write_u64(i * 64, i).unwrap();
    }
    let before = pool.device_metrics().unwrap();
    pool.persist().unwrap();
    let after = pool.device_metrics().unwrap();
    assert_eq!(after.snoops_sent - before.snoops_sent, 16, "one SnpData per logged line");
    assert!(after.snoop_data_returned > 0, "host forwarded current values");
    assert!(after.device_writebacks >= 16, "all modified lines written back");

    // Post-persist stores re-announce (lines were downgraded to S).
    vpm.write_u64(0, 99).unwrap();
    let m = pool.device_metrics().unwrap();
    assert_eq!(m.undo_entries, 17);
}

#[test]
fn metrics_compose_consistently() {
    let pool = PaxPool::create(config()).unwrap();
    let vpm = pool.vpm();
    for i in 0..32u64 {
        vpm.write_u64(i * 64, i).unwrap();
        vpm.read_u64(((i + 7) % 32) * 64).unwrap();
    }
    pool.persist().unwrap();
    let m = pool.device_metrics().unwrap();
    assert_eq!(
        m.total_messages(),
        m.rd_shared + m.rd_own + m.clean_evicts + m.dirty_evicts + m.snoops_sent
    );
    assert_eq!(m.log_bytes(), m.undo_entries * 128);
    assert!(m.persists == 1);
    let cache = pool.cache_stats();
    assert!(cache.write_upgrades >= 32);
}

#[test]
fn two_pools_are_independent() {
    let a = PaxPool::create(config()).unwrap();
    let b = PaxPool::create(config()).unwrap();
    a.vpm().write_u64(0, 1).unwrap();
    b.vpm().write_u64(0, 2).unwrap();
    a.persist().unwrap();
    assert_eq!(a.vpm().read_u64(0).unwrap(), 1);
    assert_eq!(b.vpm().read_u64(0).unwrap(), 2);
    assert_eq!(a.committed_epoch().unwrap(), 1);
    assert_eq!(b.committed_epoch().unwrap(), 0);
}
