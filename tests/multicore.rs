//! Multi-core host + PAX device, end to end: per-core caches with
//! core-to-core transfers over the device as home agent. Verifies the
//! §3.5/§3.3 interplay — dirty-line migration is invisible to the device,
//! yet `persist()` still captures every modified line by snooping all
//! cores — and crash recovery under cross-core mutation.

use pax_cache::{CacheConfig, CoreComplex};
use pax_device::{DeviceConfig, PaxDevice};
use pax_pm::{CacheLine, LineAddr, PmPool, PoolConfig};

fn setup(cores: usize) -> (PaxDevice, CoreComplex) {
    let pool =
        PmPool::create(PoolConfig::small().with_data_bytes(8 << 20).with_log_bytes(32 << 20))
            .unwrap();
    let device = PaxDevice::open(pool, DeviceConfig::default()).unwrap();
    let complex = CoreComplex::new(cores, CacheConfig::tiny(8 << 10, 4));
    (device, complex)
}

#[test]
fn migrated_dirty_lines_are_captured_by_persist() {
    let (mut device, mut cx) = setup(4);
    let addr = LineAddr(0);

    // Core 0 takes ownership (device logs the pre-image) …
    cx.write(0, addr, CacheLine::filled(1), &mut device).unwrap();
    assert_eq!(device.metrics().rd_own, 1);

    // … then the line migrates across every core, silently to the device.
    for core in 1..4 {
        cx.write(core, addr, CacheLine::filled(core as u8 + 1), &mut device).unwrap();
    }
    assert_eq!(device.metrics().rd_own, 1, "migrations must not re-announce");
    assert_eq!(device.metrics().undo_entries, 1);

    // persist() snoops all cores and captures the final value.
    device.persist(&mut cx).unwrap();
    let mut pool = device.crash_into_pool();
    let abs = pool.layout().vpm_to_pool(0).unwrap();
    assert_eq!(pool.read_line(abs).unwrap(), CacheLine::filled(4), "core 3's final value");
}

#[test]
fn per_core_working_sets_commit_together() {
    let (mut device, mut cx) = setup(4);
    for core in 0..4usize {
        for i in 0..32u64 {
            let addr = LineAddr(core as u64 * 100 + i);
            cx.write(core, addr, CacheLine::filled(core as u8), &mut device).unwrap();
        }
    }
    device.persist(&mut cx).unwrap();

    let mut pool = device.crash_into_pool();
    for core in 0..4u64 {
        for i in 0..32u64 {
            let abs = pool.layout().vpm_to_pool(core * 100 + i).unwrap();
            assert_eq!(
                pool.read_line(abs).unwrap(),
                CacheLine::filled(core as u8),
                "core {core} line {i}"
            );
        }
    }
}

#[test]
fn crash_with_cross_core_mutation_rolls_back_atomically() {
    let (mut device, mut cx) = setup(2);
    // Epoch 1: a committed baseline.
    cx.write(0, LineAddr(0), CacheLine::filled(1), &mut device).unwrap();
    cx.write(1, LineAddr(1), CacheLine::filled(1), &mut device).unwrap();
    device.persist(&mut cx).unwrap();

    // Epoch 2: both cores mutate, including a migration; never persisted.
    cx.write(0, LineAddr(0), CacheLine::filled(2), &mut device).unwrap();
    cx.write(1, LineAddr(0), CacheLine::filled(3), &mut device).unwrap(); // migrate
    cx.write(1, LineAddr(1), CacheLine::filled(2), &mut device).unwrap();
    // Push dirty lines toward PM so rollback has real work.
    for i in 10..80u64 {
        cx.write(0, LineAddr(i), CacheLine::filled(9), &mut device).unwrap();
    }

    let pool = device.crash_into_pool();
    let mut device = PaxDevice::open(pool, DeviceConfig::default()).unwrap();
    let mut cx = CoreComplex::new(2, CacheConfig::tiny(8 << 10, 4));
    assert_eq!(cx.read(0, LineAddr(0), &mut device).unwrap(), CacheLine::filled(1));
    assert_eq!(cx.read(1, LineAddr(1), &mut device).unwrap(), CacheLine::filled(1));
    assert_eq!(cx.read(0, LineAddr(10), &mut device).unwrap(), CacheLine::zeroed());
}

#[test]
fn false_sharing_pattern_still_converges() {
    // Two cores ping-pong stores to the same line; final value must win.
    let (mut device, mut cx) = setup(2);
    for round in 0..50u8 {
        let core = (round % 2) as usize;
        cx.write(core, LineAddr(7), CacheLine::filled(round), &mut device).unwrap();
    }
    device.persist(&mut cx).unwrap();
    let mut pool = device.crash_into_pool();
    let abs = pool.layout().vpm_to_pool(7).unwrap();
    assert_eq!(pool.read_line(abs).unwrap(), CacheLine::filled(49));
    // The ping-pong stayed on-socket: far fewer RdOwn than stores.
}

#[test]
fn read_sharing_after_writer_core() {
    let (mut device, mut cx) = setup(3);
    cx.write(0, LineAddr(4), CacheLine::filled(0xAB), &mut device).unwrap();
    // Readers on other cores see the value without extra device reads.
    let pm_reads_before = device.metrics().pm_reads;
    for core in 1..3 {
        assert_eq!(cx.read(core, LineAddr(4), &mut device).unwrap(), CacheLine::filled(0xAB));
    }
    assert_eq!(device.metrics().pm_reads, pm_reads_before);
    assert!(cx.stats().cache_to_cache_transfers >= 2);
}

mod libpax_level {
    //! The same multi-core model through the libpax surface: per-core vPM
    //! mappings shared by one structure.

    use libpax::{Heap, MemSpace, PHashMap, PaxConfig, PaxPool};
    use pax_pm::PoolConfig;

    fn config(cores: usize) -> PaxConfig {
        PaxConfig::default()
            .with_pool(PoolConfig::small().with_data_bytes(8 << 20).with_log_bytes(32 << 20))
            .with_cores(cores)
    }

    #[test]
    fn per_core_mappings_share_one_structure() {
        let pool = PaxPool::create(config(4)).unwrap();
        // Each "thread" gets its own core's mapping; the structure code is
        // identical — only the space handle differs.
        let maps: Vec<PHashMap<u64, u64, _, Heap<_>>> = (0..4)
            .map(|core| PHashMap::attach(Heap::attach(pool.vpm_for_core(core)).unwrap()).unwrap())
            .collect();
        for (core, map) in maps.iter().enumerate() {
            for i in 0..50u64 {
                map.insert(core as u64 * 1000 + i, i).unwrap();
            }
        }
        // Every core observes every other core's writes (coherence).
        assert_eq!(maps[0].len().unwrap(), 200);
        assert_eq!(maps[3].get(2_049).unwrap(), Some(49));
        assert!(pool.complex_stats().unwrap().cache_to_cache_transfers > 0);

        pool.persist().unwrap();
        let pm = pool.crash().unwrap();
        let pool = PaxPool::open(pm, config(1)).unwrap(); // reopen single-core
        let map: PHashMap<u64, u64, _, Heap<_>> =
            PHashMap::attach(Heap::attach(pool.vpm()).unwrap()).unwrap();
        assert_eq!(map.len().unwrap(), 200);
    }

    #[test]
    fn single_core_pool_has_no_complex_stats() {
        let pool = PaxPool::create(config(1)).unwrap();
        assert!(pool.complex_stats().is_none());
        let _ = pool.vpm_for_core(0);
    }

    #[test]
    #[should_panic]
    fn out_of_range_core_is_rejected() {
        let pool = PaxPool::create(config(2)).unwrap();
        let _ = pool.vpm_for_core(2);
    }

    #[test]
    fn vpm_values_coherent_across_cores() {
        let pool = PaxPool::create(config(2)).unwrap();
        let v0 = pool.vpm_for_core(0);
        let v1 = pool.vpm_for_core(1);
        v0.write_u64(64, 7).unwrap();
        assert_eq!(v1.read_u64(64).unwrap(), 7);
        v1.write_u64(64, 8).unwrap();
        assert_eq!(v0.read_u64(64).unwrap(), 8);
    }
}

mod log_full {
    //! Undo-log capacity behaviour: surfaced as an error by default,
    //! handled transparently with `auto_persist_on_log_full` (§3.2).

    use libpax::{MemSpace, PaxConfig, PaxPool};
    use pax_pm::PoolConfig;

    fn tiny_log(auto: bool) -> PaxConfig {
        // Room for only 16 undo entries per epoch.
        let cfg = PaxConfig::default()
            .with_pool(PoolConfig::small().with_data_bytes(1 << 20).with_log_bytes(16 * 128));
        if auto {
            cfg.with_auto_persist_on_log_full()
        } else {
            cfg
        }
    }

    #[test]
    fn log_full_surfaces_by_default() {
        let pool = PaxPool::create(tiny_log(false)).unwrap();
        let vpm = pool.vpm();
        let mut hit_full = false;
        for i in 0..64u64 {
            match vpm.write_u64(i * 64, i) {
                Ok(()) => {}
                Err(e) => {
                    assert!(e.to_string().contains("log"), "unexpected error {e}");
                    hit_full = true;
                    break;
                }
            }
        }
        assert!(hit_full, "a 16-entry log cannot absorb 64 distinct lines");
        // The application can recover by persisting and continuing.
        pool.persist().unwrap();
        vpm.write_u64(0, 99).unwrap();
    }

    #[test]
    fn auto_persist_makes_log_capacity_invisible() {
        let pool = PaxPool::create(tiny_log(true)).unwrap();
        let vpm = pool.vpm();
        for i in 0..64u64 {
            vpm.write_u64(i * 64, i).unwrap();
        }
        // Several implicit epochs were committed along the way.
        assert!(pool.committed_epoch().unwrap() >= 2);
        pool.persist().unwrap();
        let pm = pool.crash().unwrap();
        let pool = PaxPool::open(pm, tiny_log(true)).unwrap();
        let vpm = pool.vpm();
        for i in 0..64u64 {
            assert_eq!(vpm.read_u64(i * 64).unwrap(), i, "line {i}");
        }
    }
}
