//! End-to-end crash/recovery tests through the full stack: structure →
//! heap → vPM → host cache → CXL-style requests → PAX device → pool.

use libpax::{Heap, MemSpace, PHashMap, PVec, PaxConfig, PaxPool};
use pax_pm::PoolConfig;

fn config() -> PaxConfig {
    PaxConfig::default()
        .with_pool(PoolConfig::small().with_data_bytes(8 << 20).with_log_bytes(32 << 20))
}

#[test]
fn unpersisted_operations_roll_back() {
    let pool = PaxPool::create(config()).unwrap();
    {
        let map: PHashMap<u64, u64, _, Heap<_>> =
            PHashMap::attach(Heap::attach(pool.vpm()).unwrap()).unwrap();
        map.insert(1, 100).unwrap();
        map.insert(2, 200).unwrap();
        pool.persist().unwrap();
        map.insert(3, 300).unwrap();
        map.remove(1).unwrap();
        // no persist
    }
    let pm = pool.crash().unwrap();
    let pool = PaxPool::open(pm, config()).unwrap();
    let map: PHashMap<u64, u64, _, Heap<_>> =
        PHashMap::attach(Heap::attach(pool.vpm()).unwrap()).unwrap();
    assert_eq!(map.get(1).unwrap(), Some(100), "remove rolled back");
    assert_eq!(map.get(2).unwrap(), Some(200));
    assert_eq!(map.get(3).unwrap(), None, "unpersisted insert rolled back");
    assert_eq!(map.len().unwrap(), 2);
}

#[test]
fn allocator_state_recovers_with_the_data() {
    // §3.4: allocator state lives in vPM, so rollback covers it: an
    // allocation made in a lost epoch must be available again.
    let pool = PaxPool::create(config()).unwrap();
    let heap = Heap::attach(pool.vpm()).unwrap();
    let live_before = heap.live_allocations().unwrap();
    pool.persist().unwrap();

    heap.alloc(256).unwrap();
    heap.alloc(256).unwrap();
    assert_eq!(heap.live_allocations().unwrap(), live_before + 2);

    let pm = pool.crash().unwrap();
    let pool = PaxPool::open(pm, config()).unwrap();
    let heap = Heap::attach(pool.vpm()).unwrap();
    assert_eq!(
        heap.live_allocations().unwrap(),
        live_before,
        "allocations from the lost epoch must be rolled back"
    );
}

#[test]
fn repeated_crashes_between_epochs() {
    let mut pm = None;
    for round in 0u64..5 {
        let pool = match pm.take() {
            None => PaxPool::create(config()).unwrap(),
            Some(p) => PaxPool::open(p, config()).unwrap(),
        };
        let vec: PVec<u64, _, Heap<_>> = PVec::attach(Heap::attach(pool.vpm()).unwrap()).unwrap();
        assert_eq!(vec.len().unwrap(), round, "round {round}");
        vec.push(round).unwrap();
        pool.persist().unwrap();
        // Post-persist garbage that must vanish:
        vec.push(999).unwrap();
        pm = Some(pool.crash().unwrap());
    }
    let pool = PaxPool::open(pm.unwrap(), config()).unwrap();
    let vec: PVec<u64, _, Heap<_>> = PVec::attach(Heap::attach(pool.vpm()).unwrap()).unwrap();
    assert_eq!(vec.to_vec().unwrap(), vec![0, 1, 2, 3, 4]);
}

#[test]
fn crash_during_persist_preserves_previous_snapshot() {
    let pool = PaxPool::create(config()).unwrap();
    let vpm = pool.vpm();
    for i in 0..32u64 {
        vpm.write_u64(i * 64, i + 1).unwrap();
    }
    pool.persist().unwrap(); // epoch 1

    for i in 0..32u64 {
        vpm.write_u64(i * 64, 1000 + i).unwrap();
    }
    // Cut power a few durable writes into the persist sweep. (The
    // batched write-back pipeline covers 32 contiguous lines in a
    // handful of steps, so arm early to land before the commit.)
    let clock = pool.crash_clock().unwrap();
    clock.arm(clock.steps_taken() + 2);
    let err = pool.persist().unwrap_err();
    assert!(err.is_crash());

    let pm = pool.crash().unwrap();
    let pool = PaxPool::open(pm, config()).unwrap();
    assert_eq!(pool.committed_epoch().unwrap(), 1);
    let vpm = pool.vpm();
    for i in 0..32u64 {
        assert_eq!(vpm.read_u64(i * 64).unwrap(), i + 1, "line {i} must hold epoch-1 value");
    }
}

#[test]
fn crash_at_every_early_step_of_a_persist() {
    // Systematic sweep: arm the crash clock at each of the first N
    // device steps of an epoch's persist; recovery must always restore
    // the previous snapshot exactly.
    for crash_step in 0..24u64 {
        let pool = PaxPool::create(config()).unwrap();
        let vpm = pool.vpm();
        vpm.write_u64(0, 7).unwrap();
        vpm.write_u64(640, 8).unwrap();
        pool.persist().unwrap();

        for i in 0..8u64 {
            vpm.write_u64(i * 64, 100 + i).unwrap();
        }
        let clock = pool.crash_clock().unwrap();
        clock.arm(clock.steps_taken() + crash_step);
        let result = pool.persist();

        let pm = pool.crash().unwrap();
        let pool = PaxPool::open(pm, config()).unwrap();
        let vpm = pool.vpm();
        match result {
            Err(e) => {
                assert!(e.is_crash(), "step {crash_step}: {e}");
                assert_eq!(pool.committed_epoch().unwrap(), 1, "step {crash_step}");
                assert_eq!(vpm.read_u64(0).unwrap(), 7, "step {crash_step}");
                assert_eq!(vpm.read_u64(640).unwrap(), 8, "step {crash_step}");
                for i in 1..8u64 {
                    if i * 64 != 640 {
                        assert_eq!(vpm.read_u64(i * 64).unwrap(), 0, "step {crash_step} line {i}");
                    }
                }
            }
            Ok(epoch) => {
                // The clock fired after the commit (or not at all):
                // epoch 2 must be fully visible.
                assert_eq!(epoch, 2);
                for i in 0..8u64 {
                    assert_eq!(vpm.read_u64(i * 64).unwrap(), 100 + i, "step {crash_step}");
                }
            }
        }
    }
}

#[test]
fn recovery_is_transparent_for_fresh_pools() {
    // "There is no difference between constructing a new persistent map
    // and recovering one" (§3.4).
    let pool = PaxPool::create(config()).unwrap();
    let report = pool.recovery_report().unwrap();
    assert_eq!(report.rolled_back, 0);
    assert_eq!(report.committed_epoch, 0);
    let map: PHashMap<u64, u64, _, Heap<_>> =
        PHashMap::attach(Heap::attach(pool.vpm()).unwrap()).unwrap();
    assert!(map.is_empty().unwrap());
}
