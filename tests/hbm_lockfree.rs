//! Differential oracle for the lock-free HBM set index.
//!
//! The concurrent set index (per-set spinlocks, atomic hit/miss/occupancy
//! counters, lock-free write-back queue) and the mutex-era engine
//! (`DeviceConfig::with_locked_hbm`, which keeps the whole lane behind
//! its `Mutex<DeviceShard>` on the store hot path) implement the same
//! media contract: in single-driver mode they must issue the identical
//! sequence of durable-write steps. So for *any* seeded schedule of
//! writes, persists, device ticks, and an optional crash at a seeded
//! device step — including one that lands mid-epoch, inside an undo
//! drain — the two engines must produce byte-identical durable state,
//! identical device telemetry, the same committed epoch, the same
//! recovery report, and the same recovery trace.
//!
//! (The multi-thread halves of the contract — zero lane-mutex
//! acquisitions on the warm store path and counter conservation under
//! real contention — are asserted in-crate in `pax-device`'s
//! `store_hit_path_takes_no_lane_lock` and
//! `concurrent_same_lane_stores_preserve_telemetry_conservation`.)

use libpax::{MemSpace, PaxConfig, PaxPool};
use pax_device::{DeviceConfig, DeviceMetrics, RecoveryReport};
use pax_pm::{PoolConfig, LINE_SIZE};
use proptest::prelude::*;

const SPAN_LINES: u64 = 128;

fn config(locked: bool) -> PaxConfig {
    let device = if locked {
        DeviceConfig::default().with_locked_hbm()
    } else {
        DeviceConfig::default().with_lockfree_hbm()
    };
    PaxConfig::default()
        .with_pool(PoolConfig::small().with_data_bytes(8 << 20).with_log_bytes(16 << 20))
        .with_device(device.with_shards(2))
}

#[derive(Debug, PartialEq)]
struct Outcome {
    durable: Vec<u8>,
    metrics: DeviceMetrics,
    committed_epoch: u64,
    recovery: RecoveryReport,
    trace: String,
}

/// Drops the process-global `"seq":N,` prefix from every trace line (the
/// counter keeps running across pools; content and order are the
/// contract).
fn strip_seq(trace: &str) -> String {
    trace
        .lines()
        .map(|l| match l.find("\"component\"") {
            Some(i) => &l[i..],
            None => l,
        })
        .collect::<Vec<_>>()
        .join("\n")
}

/// One seeded single-driver run: `ops` writes from `seed`, a persist
/// every 41 ops, 2 device ticks every 23 ops, then — when `crash_at` is
/// set — a crash clock armed that many device steps past the start, so
/// the cut can land mid-epoch, mid-drain. Ends in a crash + reopen.
fn run_once(locked: bool, seed: u64, ops: u64, crash_at: Option<u64>) -> Outcome {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    let pool = PaxPool::create(config(locked)).unwrap();
    let vpm = pool.vpm();
    let mut rng = StdRng::seed_from_u64(seed);
    if let Some(steps) = crash_at {
        let clock = pool.crash_clock().unwrap();
        clock.arm(clock.steps_taken() + steps);
    }

    for i in 0..ops {
        let line = rng.gen_range(0u64..SPAN_LINES);
        if vpm.write_u64(line * LINE_SIZE as u64, rng.gen()).is_err() {
            break; // the armed clock fired
        }
        if i % 41 == 40 && pool.persist().is_err() {
            break;
        }
        if i % 23 == 22 && pool.run_device(2).is_err() {
            break;
        }
    }

    // Telemetry is volatile: snapshot it before power loss. After a
    // crash the accessor fails, so fall back to the default (both
    // engines crash at the identical step, so both fall back together).
    let metrics = pool.device_metrics().unwrap_or_default();
    let pm = pool.crash().unwrap();
    let pool = PaxPool::open(pm, config(locked)).unwrap();
    let trace = strip_seq(&pool.trace_dump());
    let committed_epoch = pool.committed_epoch().unwrap();
    let recovery = pool.recovery_report().unwrap();
    let vpm = pool.vpm();
    let mut durable = vec![0u8; (SPAN_LINES * LINE_SIZE as u64) as usize];
    vpm.read_bytes(0, &mut durable).unwrap();
    Outcome { durable, metrics, committed_epoch, recovery, trace }
}

fn assert_engines_agree(seed: u64, ops: u64, crash_at: Option<u64>) {
    let lockfree = run_once(false, seed, ops, crash_at);
    let locked = run_once(true, seed, ops, crash_at);
    assert_eq!(
        lockfree.committed_epoch, locked.committed_epoch,
        "committed epoch diverged (seed {seed}, crash {crash_at:?})"
    );
    assert_eq!(
        lockfree.metrics, locked.metrics,
        "device telemetry diverged (seed {seed}, crash {crash_at:?})"
    );
    assert_eq!(
        lockfree.recovery, locked.recovery,
        "recovery report diverged (seed {seed}, crash {crash_at:?})"
    );
    assert!(
        lockfree.durable == locked.durable,
        "durable bytes diverged (seed {seed}, crash {crash_at:?})"
    );
    assert_eq!(lockfree.trace, locked.trace, "recovery trace diverged (seed {seed})");
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// Lock-free vs locked HBM across random schedules ending in a
    /// clean-ish crash (unpersisted tail rolls back identically in both).
    #[test]
    fn hbm_engines_agree_without_armed_crash(seed in any::<u64>(), ops in 64u64..400) {
        assert_engines_agree(seed, ops, None);
    }

    /// Lock-free vs locked HBM with the crash clock armed at a random
    /// device step — the cut lands mid-epoch, often inside an undo-bank
    /// drain or between an HBM insert and its write back, and both
    /// engines must leave identical media and recover identically.
    #[test]
    fn hbm_engines_agree_under_mid_epoch_crash(
        seed in any::<u64>(),
        ops in 64u64..400,
        crash_at in 5u64..600,
    ) {
        assert_engines_agree(seed, ops, Some(crash_at));
    }
}

/// Pinned regression seeds so CI exercises known-interesting schedules
/// even when proptest's RNG wanders elsewhere.
#[test]
fn hbm_engines_agree_on_pinned_seeds() {
    for (seed, ops, crash_at) in
        [(42, 300, None), (7, 256, Some(37)), (1001, 384, Some(250)), (990_017, 128, Some(9))]
    {
        assert_engines_agree(seed, ops, crash_at);
    }
}
