//! Byte-level oracle tests: `VPm` must behave exactly like a flat byte
//! array for arbitrary access patterns — every line split, offset, and
//! partial-line read-modify-write in the interposition path is checked
//! against a `Vec<u8>` model, including across persist/crash/recover.

use libpax::{MemSpace, PaxConfig, PaxPool};
use pax_pm::PoolConfig;
use proptest::prelude::*;

const SPACE_BYTES: usize = 16 << 10;

fn config() -> PaxConfig {
    PaxConfig::default()
        .with_pool(PoolConfig::small().with_data_bytes(SPACE_BYTES).with_log_bytes(8 << 20))
}

#[derive(Debug, Clone)]
enum Access {
    Write { addr: u64, data: Vec<u8> },
    Read { addr: u64, len: usize },
}

fn access_strategy() -> impl Strategy<Value = Access> {
    let max = SPACE_BYTES as u64;
    prop_oneof![
        (0..max, proptest::collection::vec(any::<u8>(), 1..200)).prop_map(move |(a, d)| {
            let addr = a.min(max - d.len() as u64);
            Access::Write { addr, data: d }
        }),
        (0..max, 1usize..200).prop_map(move |(a, l)| {
            let addr = a.min(max - l as u64);
            Access::Read { addr, len: l }
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// Every read observes exactly what the byte-array model predicts,
    /// regardless of how accesses split across cache lines and what the
    /// cache/device/HBM/log machinery does underneath.
    #[test]
    fn vpm_matches_flat_byte_array(
        accesses in proptest::collection::vec(access_strategy(), 1..120)
    ) {
        let pool = PaxPool::create(config()).unwrap();
        let vpm = pool.vpm();
        let mut model = vec![0u8; SPACE_BYTES];
        for a in &accesses {
            match a {
                Access::Write { addr, data } => {
                    vpm.write_bytes(*addr, data).unwrap();
                    model[*addr as usize..*addr as usize + data.len()].copy_from_slice(data);
                }
                Access::Read { addr, len } => {
                    let mut buf = vec![0u8; *len];
                    vpm.read_bytes(*addr, &mut buf).unwrap();
                    prop_assert_eq!(
                        &buf[..],
                        &model[*addr as usize..*addr as usize + len],
                        "read at {} len {}", addr, len
                    );
                }
            }
        }
    }

    /// After persist + crash + recover, every byte of vPM equals the
    /// model at persist time.
    #[test]
    fn recovered_bytes_match_model_at_persist(
        before in proptest::collection::vec(access_strategy(), 1..60),
        after in proptest::collection::vec(access_strategy(), 0..40),
    ) {
        let pool = PaxPool::create(config()).unwrap();
        let vpm = pool.vpm();
        let mut model = vec![0u8; SPACE_BYTES];
        for a in &before {
            if let Access::Write { addr, data } = a {
                vpm.write_bytes(*addr, data).unwrap();
                model[*addr as usize..*addr as usize + data.len()].copy_from_slice(data);
            }
        }
        pool.persist().unwrap();
        // Post-persist garbage that recovery must erase:
        for a in &after {
            if let Access::Write { addr, data } = a {
                vpm.write_bytes(*addr, data).unwrap();
            }
        }

        let pm = pool.crash().unwrap();
        let pool = PaxPool::open(pm, config()).unwrap();
        let vpm = pool.vpm();
        let mut recovered = vec![0u8; SPACE_BYTES];
        vpm.read_bytes(0, &mut recovered).unwrap();
        prop_assert_eq!(recovered, model);
    }

    /// The multi-core host is byte-for-byte coherent: interleaved accesses
    /// from different cores observe one consistent flat space.
    #[test]
    fn multicore_vpm_matches_flat_byte_array(
        accesses in proptest::collection::vec((access_strategy(), 0usize..3), 1..80)
    ) {
        let pool = PaxPool::create(config().with_cores(3)).unwrap();
        let vpms: Vec<_> = (0..3).map(|c| pool.vpm_for_core(c)).collect();
        let mut model = vec![0u8; SPACE_BYTES];
        for (a, core) in &accesses {
            let vpm = &vpms[*core];
            match a {
                Access::Write { addr, data } => {
                    vpm.write_bytes(*addr, data).unwrap();
                    model[*addr as usize..*addr as usize + data.len()].copy_from_slice(data);
                }
                Access::Read { addr, len } => {
                    let mut buf = vec![0u8; *len];
                    vpm.read_bytes(*addr, &mut buf).unwrap();
                    prop_assert_eq!(
                        &buf[..],
                        &model[*addr as usize..*addr as usize + len],
                        "core {} read at {} len {}", core, addr, len
                    );
                }
            }
        }
    }
}
