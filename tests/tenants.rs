//! Multi-tenant end-to-end tests: one PAX device hosting several pool
//! contexts, each with its own vPM extent, epoch counter, and recovery
//! state.
//!
//! The isolation contract under test: tenant A's `persist()` commits A's
//! epoch without flushing or stalling B's; a crash rolls each tenant
//! back to *its own* last committed snapshot even though all tenants'
//! undo entries interleave in the shared log region; and the weighted
//! scheduler never starves a light tenant behind a heavy one.

use std::collections::HashMap as StdMap;

use libpax::{MemSpace, PaxConfig, PaxPool};
use pax_cache::{CacheConfig, CoherentCache};
use pax_device::{DeviceConfig, PaxDevice, SchedConfig, TenantRegion};
use pax_pm::{CacheLine, LineAddr, PmPool, PoolConfig, LINE_SIZE};
use proptest::prelude::*;

fn config(tenants: usize) -> PaxConfig {
    PaxConfig::default()
        .with_pool(PoolConfig::small().with_data_bytes(8 << 20).with_log_bytes(64 << 20))
        .with_device(DeviceConfig::default().with_shards(2))
        .with_tenants(tenants)
}

#[test]
fn two_tenant_isolation_end_to_end() {
    let pool = PaxPool::create(config(2)).unwrap();
    let a = pool.attach(0).unwrap();
    let b = pool.attach(1).unwrap();

    // Interleaved traffic from both tenants.
    for i in 0..16u64 {
        a.vpm().write_u64(i * LINE_SIZE as u64, 0xA000 + i).unwrap();
        b.vpm().write_u64(i * LINE_SIZE as u64, 0xB000 + i).unwrap();
    }
    // A's persist is A's barrier only: B's epoch stays open.
    assert_eq!(a.persist().unwrap(), 1);
    assert_eq!(a.committed_epoch().unwrap(), 1);
    assert_eq!(b.committed_epoch().unwrap(), 0);

    // Crash now: A recovers its snapshot, B recovers to empty.
    let pm = pool.crash().unwrap();
    let pool = PaxPool::open(pm, config(2)).unwrap();
    let a = pool.attach(0).unwrap();
    let b = pool.attach(1).unwrap();
    for i in 0..16u64 {
        assert_eq!(a.vpm().read_u64(i * LINE_SIZE as u64).unwrap(), 0xA000 + i, "line {i}");
        assert_eq!(b.vpm().read_u64(i * LINE_SIZE as u64).unwrap(), 0, "B never persisted");
    }
}

#[test]
fn tenant_telemetry_labels_conserve() {
    let pool = PaxPool::create(config(2)).unwrap();
    let a = pool.attach(0).unwrap();
    let b = pool.attach(1).unwrap();
    for i in 0..8u64 {
        a.vpm().write_u64(i * LINE_SIZE as u64, 1).unwrap();
    }
    for i in 0..4u64 {
        b.vpm().write_u64(i * LINE_SIZE as u64, 2).unwrap();
    }
    a.persist().unwrap();
    let t = pool.telemetry();
    assert_eq!(t.counter("device", "tenants"), 2);
    for name in ["rd_own", "undo_entries", "persists"] {
        assert_eq!(
            t.counter("device", &format!("tenant0/{name}"))
                + t.counter("device", &format!("tenant1/{name}")),
            t.counter("device", name),
            "{name} must conserve across tenant labels"
        );
    }
    assert_eq!(t.counter("device", "tenant0/persists"), 1);
    assert_eq!(t.counter("device", "tenant1/persists"), 0);
}

/// Weighted round-robin no-starvation regression: a weight-1 tenant
/// sharing a shard with a weight-7 log-hammering tenant still drains its
/// log on every tick (the floor-of-one guarantee), and the heavy tenant
/// gets the larger share.
#[test]
fn weighted_scheduler_never_starves_the_light_tenant() {
    let pool = PmPool::create(PoolConfig::small()).unwrap();
    let data_lines = pool.layout().data_lines;
    let half = data_lines / 2;
    let regions = vec![
        TenantRegion::new(0, half).with_weight(7),
        TenantRegion::new(half, data_lines - half).with_weight(1),
    ];
    // Foreground never pumps: only ticks make background progress.
    let config = DeviceConfig::default().with_shards(2).with_log_pump_interval(usize::MAX);
    let mut device = PaxDevice::open_multi(pool, config, regions).unwrap();
    let mut cache = CoherentCache::new(CacheConfig::tiny(256 << 10, 8));

    // Heavy tenant logs 64 entries; light tenant logs one per shard.
    for i in 0..64u64 {
        cache.write(LineAddr(i), CacheLine::filled(1), &mut device).unwrap();
    }
    for i in 0..2u64 {
        cache.write(LineAddr(half + i), CacheLine::filled(2), &mut device).unwrap();
    }
    assert_eq!(device.log_pending_for(0), 64);
    assert_eq!(device.log_pending_for(1), 2);

    // One tick. An unweighted scheduler would hand the heavy tenant the
    // whole per-shard budget and leave the light tenant's entries sitting;
    // the weighted floor guarantees every active lane drains at least one
    // entry per tick, so the light backlog clears immediately.
    device.tick(1).unwrap();
    assert_eq!(device.log_pending_for(1), 0, "light tenant drained on the first tick");
    assert!(device.log_pending_for(0) > 0, "heavy backlog is still working off");
    // Run to completion: the heavy backlog drains too; nobody is starved
    // and nothing is lost.
    for _ in 0..256 {
        device.tick(1).unwrap();
    }
    assert_eq!(device.log_pending_for(0), 0);
    assert_eq!(device.log_durable_offset(), 66, "both tenants' logs fully drained");
}

/// Adaptive budgets stay per-lane: one tenant's deep backlog boosts its
/// own lanes without inflating the other tenant's budget share.
#[test]
fn adaptive_mode_with_tenants_drains_and_commits() {
    let pool = PmPool::create(PoolConfig::small()).unwrap();
    let data_lines = pool.layout().data_lines;
    let regions = pax_device::even_split(data_lines, 2);
    let config = DeviceConfig::default()
        .with_log_pump_interval(usize::MAX)
        .with_sched(SchedConfig::default().with_adaptive());
    let mut device = PaxDevice::open_multi(pool, config, regions).unwrap();
    let mut cache = CoherentCache::new(CacheConfig::tiny(256 << 10, 8));
    let base = data_lines / 2;
    for i in 0..64u64 {
        cache.write(LineAddr(i), CacheLine::filled(1), &mut device).unwrap();
    }
    cache.write(LineAddr(base), CacheLine::filled(2), &mut device).unwrap();
    for _ in 0..128 {
        device.tick(1).unwrap();
    }
    assert_eq!(device.log_durable_offset(), 65, "both tenants drained under adaptive mode");
    device.persist_tenant(1, &mut cache).unwrap();
    assert_eq!(device.committed_epoch_for(1).unwrap(), 1);
    assert_eq!(device.committed_epoch_for(0).unwrap(), 0);
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Independent recovery for any tenant count (2–4), any skewed write
    /// mix, and any subset of tenants persisting their second epoch: a
    /// crash restores each tenant to exactly its own last committed
    /// snapshot — never a neighbour's epoch, never a mix.
    #[test]
    fn each_tenant_recovers_its_own_snapshot(
        tenants in 2usize..5,
        // Per-tenant write counts for epoch 2 — skewed ratios included.
        writes in proptest::collection::vec(1u64..48, 4..5),
        persist_mask in proptest::collection::vec(any::<bool>(), 4..5),
        crash_offset in 0u64..600,
    ) {
        let pool = PaxPool::create(config(tenants)).unwrap();
        let handles: Vec<_> = (0..tenants).map(|t| pool.attach(t).unwrap()).collect();

        // Epoch 1: every tenant persists a known base state.
        for (t, h) in handles.iter().enumerate() {
            for i in 0..8u64 {
                h.vpm().write_u64(i * LINE_SIZE as u64, (t as u64 + 1) * 1000 + i).unwrap();
            }
            h.persist().unwrap();
        }

        // Epoch 2: skewed writes; a subset of tenants persists; then the
        // crash clock may cut power anywhere in a trailing write storm.
        let mut expected: StdMap<usize, Vec<u64>> = StdMap::new();
        for (t, h) in handles.iter().enumerate() {
            let n = writes[t % writes.len()];
            for i in 0..n.min(8) {
                h.vpm().write_u64(i * LINE_SIZE as u64, (t as u64 + 1) * 2000 + i).unwrap();
            }
            let persisted = persist_mask[t % persist_mask.len()] && h.persist().is_ok();
            expected.insert(
                t,
                (0..8u64)
                    .map(|i| {
                        if persisted && i < n.min(8) {
                            (t as u64 + 1) * 2000 + i
                        } else {
                            (t as u64 + 1) * 1000 + i
                        }
                    })
                    .collect(),
            );
        }
        let clock = pool.crash_clock().unwrap();
        clock.arm(clock.steps_taken() + crash_offset);
        for h in &handles {
            for i in 0..8u64 {
                if h.vpm().write_u64(i * LINE_SIZE as u64, 0xDEAD).is_err() {
                    break;
                }
            }
        }

        let pm = pool.crash().unwrap();
        let pool = PaxPool::open(pm, config(tenants)).unwrap();
        for t in 0..tenants {
            let h = pool.attach(t).unwrap();
            let want = &expected[&t];
            for i in 0..8u64 {
                let got = h.vpm().read_u64(i * LINE_SIZE as u64).unwrap();
                prop_assert_eq!(
                    got, want[i as usize],
                    "tenant {} line {} after crash (committed epoch {})",
                    t, i, h.committed_epoch().unwrap()
                );
            }
        }
    }
}
