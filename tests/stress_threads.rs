//! Seeded multi-thread crash stress for the shard-parallel engine.
//!
//! N OS threads (one per tenant, each on its own host core) issue
//! seeded random stores against one `PaxPool` while a crash clock armed
//! at a seeded random device step kills the device mid-traffic. The
//! per-tenant recovery invariant: each tenant's recovered extent equals
//! the replay of an exact *prefix* of that tenant's write sequence, cut
//! at one of its own epoch commits — never a mix of epochs, never
//! another tenant's data, and never earlier than the last persist the
//! thread saw complete.
//!
//! Tenant epochs commit only from the owning thread (explicit
//! `persist()` or the auto-persist a full undo bank triggers during the
//! tenant's own store), so prefix-equality is exact even though all
//! tenants' undo entries interleave in the shared log.

use std::collections::HashMap as StdMap;

use libpax::{MemSpace, PaxConfig, PaxPool, PaxTenant};
use pax_device::DeviceConfig;
use pax_pm::{PoolConfig, LINE_SIZE};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const THREADS: usize = 4;
const OPS_PER_THREAD: u64 = 1_500;
const SPAN_LINES: u64 = 128;

fn config() -> PaxConfig {
    PaxConfig::default()
        .with_pool(PoolConfig::small().with_data_bytes(32 << 20).with_log_bytes(64 << 20))
        .with_device(DeviceConfig::default().with_shards(4))
        .with_cores(THREADS)
        .with_tenants(THREADS)
        .with_auto_persist_on_log_full()
}

/// What one writer thread observed: its full write sequence and the
/// write-count prefixes at which a `persist()` call returned `Ok`.
struct WriterLog {
    writes: Vec<(u64, u64)>,
    last_ok_prefix: usize,
}

fn writer(tenant: &PaxTenant, core: usize, seed: u64) -> WriterLog {
    let vpm = tenant.vpm_for_core(core);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut log = WriterLog { writes: Vec::new(), last_ok_prefix: 0 };
    for i in 1..=OPS_PER_THREAD {
        let line = rng.gen_range(0u64..SPAN_LINES);
        if vpm.write_u64(line * LINE_SIZE as u64, i).is_err() {
            break; // the crash clock fired
        }
        log.writes.push((line, i));
        if rng.gen_bool(0.02) {
            match tenant.persist() {
                Ok(_) => log.last_ok_prefix = log.writes.len(),
                Err(_) => break,
            }
        }
    }
    log
}

/// Replays `writes[..k]` into a line → value map.
fn replay(writes: &[(u64, u64)], k: usize) -> StdMap<u64, u64> {
    let mut m = StdMap::new();
    for &(line, v) in &writes[..k] {
        m.insert(line, v);
    }
    m
}

fn recovered_state(tenant: &PaxTenant) -> StdMap<u64, u64> {
    let vpm = tenant.vpm();
    let mut m = StdMap::new();
    for line in 0..SPAN_LINES {
        let v = vpm.read_u64(line * LINE_SIZE as u64).unwrap();
        if v != 0 {
            m.insert(line, v);
        }
    }
    m
}

fn run_seed(seed: u64) {
    let pool = PaxPool::create(config()).unwrap();
    let mut rng = StdRng::seed_from_u64(seed);
    let clock = pool.crash_clock().unwrap();
    clock.arm(clock.steps_taken() + rng.gen_range(500u64..60_000));

    let logs: Vec<WriterLog> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let tenant = pool.attach(t).unwrap();
                let thread_seed = seed.wrapping_mul(31).wrapping_add(t as u64);
                s.spawn(move || writer(&tenant, t, thread_seed))
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    // Crash (a no-op roll-back if the clock already fired) and recover.
    let pm = pool.crash().unwrap();
    let pool = PaxPool::open(pm, config()).unwrap();

    for (t, log) in logs.iter().enumerate() {
        let tenant = pool.attach(t).unwrap();
        let got = recovered_state(&tenant);
        // The recovered extent must equal replay of SOME prefix cut at
        // or after the last persist the thread saw complete (a later
        // commit may have landed — log-full auto-persist, or a persist
        // racing the crash — but never an earlier or torn one).
        let matched =
            (log.last_ok_prefix..=log.writes.len()).any(|k| replay(&log.writes, k) == got);
        assert!(
            matched,
            "tenant {t} (seed {seed}): recovered state is not a prefix replay \
             (writes={}, last_ok_prefix={}, recovered_lines={})",
            log.writes.len(),
            log.last_ok_prefix,
            got.len()
        );
    }
}

/// Seeded crash-point stress for the lock-free undo bank itself: several
/// appender threads hammer one `AtomicBank` while this thread pumps it to
/// a real pool with a crash clock armed mid-drain — so the crash lands
/// while appenders are inside their reserve→fill windows. Whatever the
/// instant, the media scan (what recovery replays) must contain exactly
/// the contiguous durable prefix, and every scanned entry must be one an
/// appender actually *published* (its `append` returned): a reserved but
/// unpublished slot never reaches recovery.
fn crash_window_seed(seed: u64) {
    use pax_device::UndoEntry;
    use pax_pm::{CacheLine, CrashClock, LineAddr, PmPool};
    use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
    use std::sync::Mutex;

    const APPENDERS: u64 = 3;
    const APPEND_OPS: u64 = 400;
    let pool = PmPool::create(PoolConfig::small().with_log_bytes(1 << 20)).unwrap();
    let log = pax_device::UndoLog::new(&pool);
    let bank = log.bank().expect("default engine is the CAS bank");
    let clock = CrashClock::new();
    let mut rng = StdRng::seed_from_u64(seed);
    // Each pumped entry ticks the clock once; arming below the total
    // guarantees the cut hits mid-drain, with append traffic in flight.
    clock.arm(rng.gen_range(1..APPENDERS * APPEND_OPS / 2));

    let pool = Mutex::new(pool);
    let stop = AtomicBool::new(false);
    let done = AtomicUsize::new(0);
    let published: Vec<Vec<u64>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..APPENDERS)
            .map(|a| {
                let (bank, stop, done) = (&bank, &stop, &done);
                s.spawn(move || {
                    let mut mine = Vec::new();
                    for i in 0..APPEND_OPS {
                        if stop.load(Ordering::Relaxed) {
                            break;
                        }
                        let line = a * APPEND_OPS + i; // globally unique tag
                        let entry =
                            UndoEntry::single(1, LineAddr(line), CacheLine::filled(a as u8));
                        match bank.append(entry) {
                            Ok(_) => mine.push(line),
                            Err(_) => break, // LogFull: capacity exhausted early
                        }
                    }
                    done.fetch_add(1, Ordering::Relaxed);
                    mine
                })
            })
            .collect();
        // Pump on this thread until the crash fires or everything drains.
        loop {
            match bank.pump(&mut pool.lock().unwrap(), &clock, 8) {
                Ok(0) => {
                    if done.load(Ordering::Relaxed) == APPENDERS as usize && bank.pending_len() == 0
                    {
                        break;
                    }
                    std::thread::yield_now();
                }
                Ok(_) => {}
                Err(_) => {
                    stop.store(true, Ordering::Relaxed);
                    break; // crashed
                }
            }
        }
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    let durable = bank.durable_offset();
    let published: std::collections::HashSet<u64> = published.into_iter().flatten().collect();
    let mut pool = pool.into_inner().unwrap();
    let scanned = pax_device::UndoLog::scan(&mut pool).unwrap();
    assert_eq!(
        scanned.len() as u64,
        durable,
        "seed {seed}: media must hold exactly the durable prefix"
    );
    let slots: Vec<u64> = scanned.iter().map(|&(slot, _)| slot).collect();
    assert_eq!(slots, (0..durable).collect::<Vec<u64>>(), "contiguous prefix, no holes");
    for (_, entry) in &scanned {
        assert!(
            published.contains(&entry.vpm_line.0),
            "seed {seed}: slot for line {} was never published by an appender",
            entry.vpm_line.0
        );
    }
    // And the full recovery path agrees: it replays scanned entries only.
    let report = pax_device::recover(&mut pool).unwrap();
    assert_eq!(report.scanned as u64, durable);
}

#[test]
fn crash_in_reserve_fill_window_replays_only_published_slots() {
    for seed in [11, 4242, 777_001] {
        crash_window_seed(seed);
    }
}

#[test]
fn seeded_crash_stress_early() {
    run_seed(7);
}

#[test]
fn seeded_crash_stress_mid() {
    run_seed(1001);
}

#[test]
fn seeded_crash_stress_late() {
    run_seed(990_017);
}
