//! Structure tests on the *persistent* space: the same volatile-style
//! code that unit tests exercise on `VolatileSpace` must behave
//! identically on `VPm`, including across crash/recovery — the black-box
//! reuse claim.

use libpax::{
    Heap, MemSpace, PBTreeMap, PHashMap, PList, PRing, PVec, PaxConfig, PaxPool, VolatileSpace,
};
use pax_pm::PoolConfig;

fn config() -> PaxConfig {
    PaxConfig::default()
        .with_pool(PoolConfig::small().with_data_bytes(16 << 20).with_log_bytes(64 << 20))
}

fn pool() -> PaxPool {
    PaxPool::create(config()).unwrap()
}

#[test]
fn hashmap_behaves_identically_volatile_and_persistent() {
    fn drive<S: libpax::MemSpace>(space: S) -> Vec<(u64, u64)> {
        let m: PHashMap<u64, u64, S, Heap<S>> =
            PHashMap::attach(Heap::attach(space).unwrap()).unwrap();
        for k in 0..300u64 {
            m.insert(k, k * k).unwrap();
        }
        for k in (0..300u64).step_by(2) {
            m.remove(k).unwrap();
        }
        for k in 100..150u64 {
            m.insert(k, 1).unwrap();
        }
        let mut e = m.entries().unwrap();
        e.sort_unstable();
        e
    }
    let volatile = drive(VolatileSpace::new(16 << 20));
    let persistent = drive(pool().vpm());
    assert_eq!(volatile, persistent);
}

#[test]
fn vec_and_list_on_vpm() {
    let p1 = pool();
    let v: PVec<u64, _, Heap<_>> = PVec::attach(Heap::attach(p1.vpm()).unwrap()).unwrap();
    for i in 0..500 {
        v.push(i).unwrap();
    }
    assert_eq!(v.len().unwrap(), 500);
    assert_eq!(v.get(499).unwrap(), Some(499));
    assert_eq!(v.pop().unwrap(), Some(499));

    let p2 = pool();
    let l: PList<u64, _, Heap<_>> = PList::attach(Heap::attach(p2.vpm()).unwrap()).unwrap();
    for i in 0..100 {
        l.push_back(i).unwrap();
        l.push_front(1000 + i).unwrap();
    }
    assert_eq!(l.len().unwrap(), 200);
    assert_eq!(l.pop_front().unwrap(), Some(1099));
    assert_eq!(l.pop_back().unwrap(), Some(99));
}

#[test]
fn hashmap_growth_survives_persist_and_crash() {
    let pool = pool();
    let map: PHashMap<u64, u64, _, Heap<_>> =
        PHashMap::attach(Heap::attach(pool.vpm()).unwrap()).unwrap();
    // Enough inserts to trigger several rehashes.
    for k in 0..2_000u64 {
        map.insert(k, k + 1).unwrap();
    }
    assert!(map.bucket_count().unwrap() >= 1024);
    pool.persist().unwrap();

    let pm = pool.crash().unwrap();
    let pool = PaxPool::open(pm, config()).unwrap();
    let map: PHashMap<u64, u64, _, Heap<_>> =
        PHashMap::attach(Heap::attach(pool.vpm()).unwrap()).unwrap();
    assert_eq!(map.len().unwrap(), 2_000);
    for k in (0..2_000u64).step_by(37) {
        assert_eq!(map.get(k).unwrap(), Some(k + 1), "key {k}");
    }
}

#[test]
fn crash_mid_rehash_rolls_back_cleanly() {
    // Fill to just below a growth threshold, persist, then push the map
    // over the threshold (rehash) without persisting; crash. The
    // recovered map must be the pre-rehash snapshot, fully intact.
    let pool = pool();
    let map: PHashMap<u64, u64, _, Heap<_>> =
        PHashMap::attach(Heap::attach(pool.vpm()).unwrap()).unwrap();
    for k in 0..31u64 {
        map.insert(k, k).unwrap();
    }
    let buckets_before = map.bucket_count().unwrap();
    pool.persist().unwrap();

    for k in 31..80u64 {
        map.insert(k, k).unwrap(); // triggers ≥1 rehash
    }
    assert!(map.bucket_count().unwrap() > buckets_before);

    let pm = pool.crash().unwrap();
    let pool = PaxPool::open(pm, config()).unwrap();
    let map: PHashMap<u64, u64, _, Heap<_>> =
        PHashMap::attach(Heap::attach(pool.vpm()).unwrap()).unwrap();
    assert_eq!(map.bucket_count().unwrap(), buckets_before);
    assert_eq!(map.len().unwrap(), 31);
    for k in 0..31u64 {
        assert_eq!(map.get(k).unwrap(), Some(k), "key {k}");
    }
}

#[test]
fn vec_growth_mid_epoch_crash() {
    let pool = pool();
    let v: PVec<u32, _, Heap<_>> = PVec::attach(Heap::attach(pool.vpm()).unwrap()).unwrap();
    for i in 0..8u32 {
        v.push(i).unwrap(); // exactly the initial capacity
    }
    pool.persist().unwrap();
    v.push(8).unwrap(); // forces the grow-copy-swap sequence
    v.push(9).unwrap();

    let pm = pool.crash().unwrap();
    let pool = PaxPool::open(pm, config()).unwrap();
    let v: PVec<u32, _, Heap<_>> = PVec::attach(Heap::attach(pool.vpm()).unwrap()).unwrap();
    assert_eq!(v.to_vec().unwrap(), (0..8).collect::<Vec<u32>>());
}

#[test]
fn multiple_structure_types_share_the_same_code_paths() {
    // Wide-element structures exercise multi-line values.
    let pool = pool();
    let m: PHashMap<[u8; 24], [u8; 40], _, Heap<_>> =
        PHashMap::attach(Heap::attach(pool.vpm()).unwrap()).unwrap();
    let key = |i: u8| -> [u8; 24] { [i; 24] };
    let val = |i: u8| -> [u8; 40] { [i.wrapping_mul(3); 40] };
    for i in 0..50u8 {
        m.insert(key(i), val(i)).unwrap();
    }
    pool.persist().unwrap();
    let pm = pool.crash().unwrap();
    let pool = PaxPool::open(pm, config()).unwrap();
    let m: PHashMap<[u8; 24], [u8; 40], _, Heap<_>> =
        PHashMap::attach(Heap::attach(pool.vpm()).unwrap()).unwrap();
    for i in 0..50u8 {
        assert_eq!(m.get(key(i)).unwrap(), Some(val(i)), "key {i}");
    }
}

#[test]
fn byte_level_access_patterns() {
    let pool = pool();
    let vpm = pool.vpm();
    // Writes of every small size at every offset within a line.
    for size in [1usize, 2, 3, 7, 8, 9, 15, 16, 63, 64, 65, 127] {
        let data: Vec<u8> = (0..size as u8).collect();
        for offset in [0u64, 1, 31, 63] {
            let addr = 4096 + offset;
            vpm.write_bytes(addr, &data).unwrap();
            let mut buf = vec![0u8; size];
            vpm.read_bytes(addr, &mut buf).unwrap();
            assert_eq!(buf, data, "size {size} offset {offset}");
        }
    }
}

#[test]
fn ring_buffer_survives_crash_at_snapshot() {
    let p = pool();
    let r: PRing<u64, _, Heap<_>> = PRing::create(Heap::attach(p.vpm()).unwrap(), 8).unwrap();
    for i in 0..6 {
        assert!(r.push(i).unwrap());
    }
    r.pop().unwrap();
    p.persist().unwrap();
    // Post-snapshot churn that must vanish:
    r.pop().unwrap();
    r.push(100).unwrap();

    let pm = p.crash().unwrap();
    let p = PaxPool::open(pm, config()).unwrap();
    let r: PRing<u64, _, Heap<_>> = PRing::attach(Heap::attach(p.vpm()).unwrap()).unwrap();
    assert_eq!(r.len().unwrap(), 5);
    assert_eq!(r.pop().unwrap(), Some(1));
    assert_eq!(r.capacity().unwrap(), 8);
}

#[test]
fn btree_crash_mid_split_rolls_back() {
    // Fill the root leaf exactly to capacity, persist, then trigger the
    // multi-node split without persisting; crash. The recovered tree must
    // be the pre-split snapshot with all invariants intact.
    let p = pool();
    let t: PBTreeMap<u64, u64, _, Heap<_>> =
        PBTreeMap::attach(Heap::attach(p.vpm()).unwrap()).unwrap();
    for k in 0..7u64 {
        t.insert(k, k).unwrap(); // MAX_KEYS for MIN_DEGREE=4
    }
    p.persist().unwrap();
    for k in 7..40u64 {
        t.insert(k, k).unwrap(); // forces root and deeper splits
    }
    t.check_invariants().unwrap();

    let pm = p.crash().unwrap();
    let p = PaxPool::open(pm, config()).unwrap();
    let t: PBTreeMap<u64, u64, _, Heap<_>> =
        PBTreeMap::attach(Heap::attach(p.vpm()).unwrap()).unwrap();
    t.check_invariants().unwrap();
    assert_eq!(t.len().unwrap(), 7);
    assert_eq!(t.entries().unwrap(), (0..7).map(|k| (k, k)).collect::<Vec<_>>());
}

#[test]
fn btree_range_scans_on_persistent_space() {
    let p = pool();
    let t: PBTreeMap<u64, u64, _, Heap<_>> =
        PBTreeMap::attach(Heap::attach(p.vpm()).unwrap()).unwrap();
    for k in 0..500u64 {
        t.insert(k * 2, k).unwrap();
    }
    p.persist().unwrap();
    let pm = p.crash().unwrap();
    let p = PaxPool::open(pm, config()).unwrap();
    let t: PBTreeMap<u64, u64, _, Heap<_>> =
        PBTreeMap::attach(Heap::attach(p.vpm()).unwrap()).unwrap();
    let r = t.range(100, 110).unwrap();
    assert_eq!(r, vec![(100, 50), (102, 51), (104, 52), (106, 53), (108, 54), (110, 55)]);
    t.check_invariants().unwrap();
}
