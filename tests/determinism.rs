//! Determinism regression: single-driver mode is bit-identical.
//!
//! The concurrent engine refactor made `PaxPool` `Send + Sync` with
//! per-shard locking, but the contract for a *single* driver thread is
//! unchanged: the same seed and the same op/persist/tick schedule must
//! produce byte-identical durable state, an identical telemetry
//! snapshot, and an identical device trace. Every lock in the engine is
//! uncontended on this path, so lock acquisition order — the only
//! source of nondeterminism the refactor could have introduced — is
//! fixed by program order.

use libpax::{MemSpace, PaxConfig, PaxPool};
use pax_device::DeviceConfig;
use pax_pm::{PoolConfig, LINE_SIZE};
use pax_telemetry::TelemetrySnapshot;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const SPAN_LINES: u64 = 512;
const OPS: u64 = 3_000;

fn config() -> PaxConfig {
    PaxConfig::default()
        .with_pool(PoolConfig::small().with_data_bytes(8 << 20).with_log_bytes(64 << 20))
        .with_device(DeviceConfig::default().with_shards(4))
}

struct RunResult {
    durable: Vec<u8>,
    telemetry: TelemetrySnapshot,
    post_crash_telemetry: TelemetrySnapshot,
    trace: String,
    committed_epoch: u64,
}

/// Drops the `"seq":N,` prefix from every trace event line.
fn strip_seq(trace: &str) -> String {
    trace
        .lines()
        .map(|l| match l.find("\"component\"") {
            Some(i) => &l[i..],
            None => l,
        })
        .collect::<Vec<_>>()
        .join("\n")
}

/// One seeded single-driver run over a fixed schedule: seeded writes,
/// persists every 257 ops, explicit device ticks every 97 ops, a
/// persisted body plus an unpersisted tail, then a crash and reopen.
fn run_once(seed: u64) -> RunResult {
    run_once_with(seed, config())
}

fn run_once_with(seed: u64, config: PaxConfig) -> RunResult {
    let pool = PaxPool::create(config).unwrap();
    let vpm = pool.vpm();
    let mut rng = StdRng::seed_from_u64(seed);

    for i in 0..OPS {
        let line = rng.gen_range(0u64..SPAN_LINES);
        vpm.write_u64(line * LINE_SIZE as u64, rng.gen()).unwrap();
        if i % 257 == 256 {
            pool.persist().unwrap();
        }
        if i % 97 == 96 {
            pool.run_device(3).unwrap();
        }
    }
    pool.persist().unwrap();
    // An unpersisted tail the crash must roll back — identically.
    for _ in 0..64 {
        let line = rng.gen_range(0u64..SPAN_LINES);
        vpm.write_u64(line * LINE_SIZE as u64, rng.gen()).unwrap();
    }

    let telemetry = pool.telemetry();
    let pm = pool.crash().unwrap();
    let post_crash_telemetry = pool.telemetry();
    let pool = PaxPool::open(pm, config).unwrap();
    // The trace `seq` counter is process-global (it orders events across
    // pools), so it keeps counting between the two runs; the determinism
    // contract covers event content and order, not the global numbering.
    let trace = strip_seq(&pool.trace_dump());
    let committed_epoch = pool.committed_epoch().unwrap();
    let vpm = pool.vpm();
    let mut durable = vec![0u8; (SPAN_LINES * LINE_SIZE as u64) as usize];
    vpm.read_bytes(0, &mut durable).unwrap();
    RunResult { durable, telemetry, post_crash_telemetry, trace, committed_epoch }
}

#[test]
fn single_driver_runs_are_bit_identical() {
    let a = run_once(42);
    let b = run_once(42);
    assert_eq!(a.committed_epoch, b.committed_epoch, "committed epoch diverged");
    assert!(a.durable == b.durable, "durable bytes diverged between identical runs");
    assert_eq!(a.telemetry, b.telemetry, "live telemetry diverged");
    assert_eq!(
        a.post_crash_telemetry, b.post_crash_telemetry,
        "post-crash telemetry stash diverged"
    );
    assert_eq!(a.trace, b.trace, "recovery trace diverged");
}

/// The `PersistencyModel` refactor's compatibility pin: explicitly
/// selecting `Epoch` — the default — is not a different engine. Durable
/// bytes, committed epoch, telemetry, and the seq-normalized trace all
/// stay bit-identical to a config that never mentions persistency.
#[test]
fn explicit_epoch_model_is_bit_identical_to_the_default() {
    use libpax::PersistencyModel;
    let a = run_once(42);
    let b = run_once_with(42, config().with_persistency(PersistencyModel::Epoch));
    assert_eq!(a.committed_epoch, b.committed_epoch, "committed epoch diverged");
    assert!(a.durable == b.durable, "durable bytes diverged under explicit Epoch");
    assert_eq!(a.telemetry, b.telemetry, "telemetry diverged under explicit Epoch");
    assert_eq!(a.post_crash_telemetry, b.post_crash_telemetry);
    assert_eq!(a.trace, b.trace, "trace diverged under explicit Epoch");
}

#[test]
fn different_seeds_actually_diverge() {
    // Sanity for the test above: the schedule is seed-sensitive, so a
    // pass is not vacuous.
    let a = run_once(1);
    let b = run_once(2);
    assert!(a.durable != b.durable, "different seeds must produce different state");
}
