//! Property tests for the sharded PAX device.
//!
//! Sharding splits the device's per-line state into `S` address-
//! interleaved banks, but it is a performance structure, not a semantic
//! one: for ANY interleaving of reads, writes, and persists across cores,
//! a pool on an `S`-shard device must be state-equivalent to the same
//! run on a 1-shard device — including what survives a crash. A second
//! property checks the §3.4 invariant directly on sharded devices: a
//! crash at an arbitrary device step recovers exactly the last
//! *committed* epoch's snapshot, never a mix.

use libpax::{MemSpace, PaxConfig, PaxPool};
use pax_device::DeviceConfig;
use pax_pm::PoolConfig;
use proptest::prelude::*;

const CORES: usize = 3;
const LINES: u64 = 24;

fn config(shards: usize) -> PaxConfig {
    PaxConfig::default()
        .with_pool(PoolConfig::small().with_data_bytes(4 << 20).with_log_bytes(16 << 20))
        .with_cores(CORES)
        .with_device(DeviceConfig::default().with_shards(shards))
}

#[derive(Debug, Clone)]
enum Op {
    Write {
        core: u8,
        line: u8,
        value: u64,
    },
    Read {
        core: u8,
        line: u8,
    },
    Persist,
    PersistAsync,
    Poll,
    /// Advance the device's virtual-time scheduler by `n` ticks.
    Tick(u64),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        5 => (0u8..CORES as u8, 0u8..LINES as u8, any::<u64>())
            .prop_map(|(core, line, value)| Op::Write { core, line, value }),
        3 => (0u8..CORES as u8, 0u8..LINES as u8)
            .prop_map(|(core, line)| Op::Read { core, line }),
        1 => Just(Op::Persist),
        1 => Just(Op::PersistAsync),
        2 => Just(Op::Poll),
        2 => (1u64..6).prop_map(Op::Tick),
    ]
}

/// Runs `ops`, commits everything pending, crashes, reopens, and returns
/// every observable: the values reads saw, the committed epoch, and the
/// recovered contents of all lines.
fn run_to_end(shards: usize, ops: &[Op]) -> (Vec<u64>, u64, Vec<u64>) {
    let pool = PaxPool::create(config(shards)).unwrap();
    let mut observed = Vec::new();
    for op in ops {
        match op {
            Op::Write { core, line, value } => {
                pool.vpm_for_core(*core as usize).write_u64(*line as u64 * 64, *value).unwrap();
            }
            Op::Read { core, line } => {
                observed
                    .push(pool.vpm_for_core(*core as usize).read_u64(*line as u64 * 64).unwrap());
            }
            Op::Persist => {
                pool.persist().unwrap();
            }
            Op::PersistAsync => {
                pool.persist_async().unwrap();
            }
            Op::Poll => {
                // Commit timing varies with the shard count (each poll
                // pumps every bank), so the poll result is not part of
                // the equivalence surface — the final wait below is.
                let _ = pool.persist_poll().unwrap();
            }
            Op::Tick(n) => {
                // Ticks perform shard-count-dependent *amounts* of work,
                // but are state-invisible — only the equivalence of the
                // final pool matters.
                let _ = pool.run_device(*n).unwrap();
            }
        }
    }
    pool.persist_wait().unwrap();
    let committed = pool.committed_epoch().unwrap();

    let pm = pool.crash().unwrap();
    let pool = PaxPool::open(pm, config(shards)).unwrap();
    assert_eq!(pool.committed_epoch().unwrap(), committed);
    let vpm = pool.vpm();
    let recovered = (0..LINES).map(|l| vpm.read_u64(l * 64).unwrap()).collect();
    (observed, committed, recovered)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Any interleaving of reads, writes, and persists across cores is
    /// state-equivalent on S ∈ {2, 8} shards to the same run on S = 1.
    #[test]
    fn shard_count_is_state_transparent(
        ops in proptest::collection::vec(op_strategy(), 1..80)
    ) {
        let baseline = run_to_end(1, &ops);
        for shards in [2usize, 8] {
            let sharded = run_to_end(shards, &ops);
            prop_assert_eq!(&baseline, &sharded, "S={} diverged from S=1", shards);
        }
    }

    /// With a crash armed at an arbitrary device step — possibly mid-op,
    /// mid-snoop, or mid-drain — a sharded pool recovers exactly the
    /// snapshot of whatever epoch had committed, for every shard count.
    #[test]
    fn sharded_crash_recovery_lands_on_a_committed_snapshot(
        ops in proptest::collection::vec(op_strategy(), 1..60),
        crash_offset in 0u64..300,
        shards in prop_oneof![Just(1usize), Just(2), Just(8)],
    ) {
        let pool = PaxPool::create(config(shards)).unwrap();
        // snapshots[e] is what epoch e must restore; epoch 0 is all
        // zeroes.
        let mut state = vec![0u64; LINES as usize];
        let mut snapshots = vec![state.clone()];

        let clock = pool.crash_clock().unwrap();
        clock.arm(clock.steps_taken() + crash_offset);
        for op in &ops {
            let mut step = || -> libpax::Result<()> {
                match op {
                    Op::Write { core, line, value } => {
                        pool.vpm_for_core(*core as usize)
                            .write_u64(*line as u64 * 64, *value)?;
                        state[*line as usize] = *value;
                    }
                    Op::Read { core, line } => {
                        pool.vpm_for_core(*core as usize).read_u64(*line as u64 * 64)?;
                    }
                    Op::Persist => {
                        // The snapshot's content is fixed when the epoch
                        // closes, even if the call then dies mid-commit.
                        snapshots.push(state.clone());
                        pool.persist()?;
                    }
                    Op::PersistAsync => {
                        snapshots.push(state.clone());
                        pool.persist_async()?;
                    }
                    Op::Poll => {
                        pool.persist_poll()?;
                    }
                    Op::Tick(n) => {
                        pool.run_device(*n)?;
                    }
                }
                Ok(())
            };
            if step().is_err() {
                break; // the armed crash fired
            }
        }

        let pm = pool.crash().unwrap();
        let pool = PaxPool::open(pm, config(shards)).unwrap();
        let committed = pool.committed_epoch().unwrap() as usize;
        prop_assert!(
            committed < snapshots.len(),
            "committed epoch {} but only {} epochs were opened",
            committed,
            snapshots.len()
        );
        let vpm = pool.vpm();
        for line in 0..LINES {
            prop_assert_eq!(
                vpm.read_u64(line * 64).unwrap(),
                snapshots[committed][line as usize],
                "line {} under committed epoch {} (S={})",
                line,
                committed,
                shards
            );
        }
    }

    /// Virtual ticks are pure background progress: inserting
    /// `run_device()` calls at ANY split points of an op sequence leaves
    /// every observable — read values, committed epoch, recovered state —
    /// identical to the same sequence without any ticks.
    #[test]
    fn device_ticks_are_state_transparent(
        ops in proptest::collection::vec(op_strategy(), 1..80),
        shards in prop_oneof![Just(1usize), Just(4)],
    ) {
        let without: Vec<Op> =
            ops.iter().filter(|o| !matches!(o, Op::Tick(_))).cloned().collect();
        let unticked = run_to_end(shards, &without);
        let ticked = run_to_end(shards, &ops);
        prop_assert_eq!(&unticked, &ticked, "ticks changed observable state (S={})", shards);
    }
}

/// Regression for the pump-starvation bug: background progress used to be
/// driven by a single global request counter, so a workload hitting one
/// shard monopolised all pumping and other shards' pending work sat until
/// the next `persist()`. The scheduler gives each shard its own credit
/// and donates one round-robin step per pump to a shard with pending
/// work.
#[test]
fn skewed_traffic_cannot_starve_an_idle_shards_background_work() {
    let pool = PaxPool::create(config(4)).unwrap();
    let vpm = pool.vpm();
    // Seed shards 1..3 with pending undo entries (appends happen after
    // the shard's own pump step, so each write leaves one entry behind).
    for line in [1u64, 2, 3] {
        vpm.write_u64(line * 64, line).unwrap();
    }
    // Then traffic lands only on shard 0 — distinct lines so every read
    // misses the host cache and actually reaches the device.
    for i in 0..64u64 {
        vpm.read_u64(i * 4 * 64).unwrap();
    }
    let m = pool.device_metrics().unwrap();
    assert_eq!(m.persists, 0, "no persist may be involved");
    assert!(
        m.sched_idle_steps >= 3,
        "shard-0 traffic must donate drain steps to shards 1..3, got {m:?}"
    );
}
