//! Property tests for the sharded PAX device.
//!
//! Sharding splits the device's per-line state into `S` address-
//! interleaved banks, but it is a performance structure, not a semantic
//! one: for ANY interleaving of reads, writes, and persists across cores,
//! a pool on an `S`-shard device must be state-equivalent to the same
//! run on a 1-shard device — including what survives a crash. A second
//! property checks the §3.4 invariant directly on sharded devices: a
//! crash at an arbitrary device step recovers exactly the last
//! *committed* epoch's snapshot, never a mix.

use libpax::{MemSpace, PaxConfig, PaxPool};
use pax_device::DeviceConfig;
use pax_pm::PoolConfig;
use proptest::prelude::*;

const CORES: usize = 3;
const LINES: u64 = 24;

fn config(shards: usize) -> PaxConfig {
    PaxConfig::default()
        .with_pool(PoolConfig::small().with_data_bytes(4 << 20).with_log_bytes(16 << 20))
        .with_cores(CORES)
        .with_device(DeviceConfig::default().with_shards(shards))
}

#[derive(Debug, Clone)]
enum Op {
    Write { core: u8, line: u8, value: u64 },
    Read { core: u8, line: u8 },
    Persist,
    PersistAsync,
    Poll,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        5 => (0u8..CORES as u8, 0u8..LINES as u8, any::<u64>())
            .prop_map(|(core, line, value)| Op::Write { core, line, value }),
        3 => (0u8..CORES as u8, 0u8..LINES as u8)
            .prop_map(|(core, line)| Op::Read { core, line }),
        1 => Just(Op::Persist),
        1 => Just(Op::PersistAsync),
        2 => Just(Op::Poll),
    ]
}

/// Runs `ops`, commits everything pending, crashes, reopens, and returns
/// every observable: the values reads saw, the committed epoch, and the
/// recovered contents of all lines.
fn run_to_end(shards: usize, ops: &[Op]) -> (Vec<u64>, u64, Vec<u64>) {
    let pool = PaxPool::create(config(shards)).unwrap();
    let mut observed = Vec::new();
    for op in ops {
        match op {
            Op::Write { core, line, value } => {
                pool.vpm_for_core(*core as usize).write_u64(*line as u64 * 64, *value).unwrap();
            }
            Op::Read { core, line } => {
                observed
                    .push(pool.vpm_for_core(*core as usize).read_u64(*line as u64 * 64).unwrap());
            }
            Op::Persist => {
                pool.persist().unwrap();
            }
            Op::PersistAsync => {
                pool.persist_async().unwrap();
            }
            Op::Poll => {
                // Commit timing varies with the shard count (each poll
                // pumps every bank), so the poll result is not part of
                // the equivalence surface — the final wait below is.
                let _ = pool.persist_poll().unwrap();
            }
        }
    }
    pool.persist_wait().unwrap();
    let committed = pool.committed_epoch().unwrap();

    let pm = pool.crash().unwrap();
    let pool = PaxPool::open(pm, config(shards)).unwrap();
    assert_eq!(pool.committed_epoch().unwrap(), committed);
    let vpm = pool.vpm();
    let recovered = (0..LINES).map(|l| vpm.read_u64(l * 64).unwrap()).collect();
    (observed, committed, recovered)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Any interleaving of reads, writes, and persists across cores is
    /// state-equivalent on S ∈ {2, 8} shards to the same run on S = 1.
    #[test]
    fn shard_count_is_state_transparent(
        ops in proptest::collection::vec(op_strategy(), 1..80)
    ) {
        let baseline = run_to_end(1, &ops);
        for shards in [2usize, 8] {
            let sharded = run_to_end(shards, &ops);
            prop_assert_eq!(&baseline, &sharded, "S={} diverged from S=1", shards);
        }
    }

    /// With a crash armed at an arbitrary device step — possibly mid-op,
    /// mid-snoop, or mid-drain — a sharded pool recovers exactly the
    /// snapshot of whatever epoch had committed, for every shard count.
    #[test]
    fn sharded_crash_recovery_lands_on_a_committed_snapshot(
        ops in proptest::collection::vec(op_strategy(), 1..60),
        crash_offset in 0u64..300,
        shards in prop_oneof![Just(1usize), Just(2), Just(8)],
    ) {
        let pool = PaxPool::create(config(shards)).unwrap();
        // snapshots[e] is what epoch e must restore; epoch 0 is all
        // zeroes.
        let mut state = vec![0u64; LINES as usize];
        let mut snapshots = vec![state.clone()];

        let clock = pool.crash_clock().unwrap();
        clock.arm(clock.steps_taken() + crash_offset);
        for op in &ops {
            let mut step = || -> libpax::Result<()> {
                match op {
                    Op::Write { core, line, value } => {
                        pool.vpm_for_core(*core as usize)
                            .write_u64(*line as u64 * 64, *value)?;
                        state[*line as usize] = *value;
                    }
                    Op::Read { core, line } => {
                        pool.vpm_for_core(*core as usize).read_u64(*line as u64 * 64)?;
                    }
                    Op::Persist => {
                        // The snapshot's content is fixed when the epoch
                        // closes, even if the call then dies mid-commit.
                        snapshots.push(state.clone());
                        pool.persist()?;
                    }
                    Op::PersistAsync => {
                        snapshots.push(state.clone());
                        pool.persist_async()?;
                    }
                    Op::Poll => {
                        pool.persist_poll()?;
                    }
                }
                Ok(())
            };
            if step().is_err() {
                break; // the armed crash fired
            }
        }

        let pm = pool.crash().unwrap();
        let pool = PaxPool::open(pm, config(shards)).unwrap();
        let committed = pool.committed_epoch().unwrap() as usize;
        prop_assert!(
            committed < snapshots.len(),
            "committed epoch {} but only {} epochs were opened",
            committed,
            snapshots.len()
        );
        let vpm = pool.vpm();
        for line in 0..LINES {
            prop_assert_eq!(
                vpm.read_u64(line * 64).unwrap(),
                snapshots[committed][line as usize],
                "line {} under committed epoch {} (S={})",
                line,
                committed,
                shards
            );
        }
    }
}
