//! Multi-threading contract tests (§3.5): thread-safe structure code over
//! vPM works concurrently; `persist()` runs at quiescent points; and the
//! persisted snapshot reflects complete operations only.

use std::sync::Arc;
use std::thread;

use libpax::{Heap, PHashMap, PaxConfig, PaxPool};
use pax_pm::PoolConfig;

fn config() -> PaxConfig {
    PaxConfig::default()
        .with_pool(PoolConfig::small().with_data_bytes(16 << 20).with_log_bytes(64 << 20))
}

#[test]
fn concurrent_inserts_then_quiescent_persist() {
    let pool = PaxPool::create(config()).unwrap();
    let map: Arc<PHashMap<u64, u64, _, Heap<_>>> =
        Arc::new(PHashMap::attach(Heap::attach(pool.vpm()).unwrap()).unwrap());

    let threads = 4;
    let per_thread = 200u64;
    let mut handles = Vec::new();
    for t in 0..threads {
        let map = Arc::clone(&map);
        handles.push(thread::spawn(move || {
            for i in 0..per_thread {
                map.insert(t * 10_000 + i, i).unwrap();
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    // All threads joined → quiescent (the §3.5 requirement) → persist.
    pool.persist().unwrap();

    let pm = pool.crash().unwrap();
    let pool = PaxPool::open(pm, config()).unwrap();
    let map: PHashMap<u64, u64, _, Heap<_>> =
        PHashMap::attach(Heap::attach(pool.vpm()).unwrap()).unwrap();
    assert_eq!(map.len().unwrap(), threads * per_thread);
    for t in 0..threads {
        for i in (0..per_thread).step_by(17) {
            assert_eq!(map.get(t * 10_000 + i).unwrap(), Some(i));
        }
    }
}

#[test]
fn mixed_readers_and_writers() {
    let pool = PaxPool::create(config()).unwrap();
    let map: Arc<PHashMap<u64, u64, _, Heap<_>>> =
        Arc::new(PHashMap::attach(Heap::attach(pool.vpm()).unwrap()).unwrap());
    for k in 0..500u64 {
        map.insert(k, k).unwrap();
    }

    let mut handles = Vec::new();
    for t in 0..2u64 {
        let map = Arc::clone(&map);
        handles.push(thread::spawn(move || {
            for i in 0..300u64 {
                map.insert(1000 + t * 1000 + i, i).unwrap();
            }
        }));
    }
    for _ in 0..2 {
        let map = Arc::clone(&map);
        handles.push(thread::spawn(move || {
            let mut found = 0;
            for i in 0..600u64 {
                if map.get(i % 500).unwrap().is_some() {
                    found += 1;
                }
            }
            assert_eq!(found, 600, "preloaded keys must always be visible");
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(map.len().unwrap(), 500 + 600);
}

#[test]
fn handles_are_send_and_clone() {
    fn assert_send_clone<T: Send + Clone>() {}
    assert_send_clone::<libpax::VPm>();
    assert_send_clone::<PaxPool>();
    assert_send_clone::<PHashMap<u64, u64, libpax::VPm>>();
}

#[test]
fn epochs_interleave_with_thread_batches() {
    // Alternating parallel batches and persists: every persisted batch
    // must survive a final crash; the last (unpersisted) one must not.
    let pool = PaxPool::create(config()).unwrap();
    let map: Arc<PHashMap<u64, u64, _, Heap<_>>> =
        Arc::new(PHashMap::attach(Heap::attach(pool.vpm()).unwrap()).unwrap());

    for batch in 0..3u64 {
        let mut handles = Vec::new();
        for t in 0..3u64 {
            let map = Arc::clone(&map);
            handles.push(thread::spawn(move || {
                for i in 0..50u64 {
                    map.insert(batch * 1000 + t * 100 + i, batch).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        pool.persist().unwrap();
    }

    // Unpersisted batch 3:
    for i in 0..50u64 {
        map.insert(3_000 + i, 3).unwrap();
    }

    let pm = pool.crash().unwrap();
    let pool = PaxPool::open(pm, config()).unwrap();
    let map: PHashMap<u64, u64, _, Heap<_>> =
        PHashMap::attach(Heap::attach(pool.vpm()).unwrap()).unwrap();
    assert_eq!(map.len().unwrap(), 3 * 3 * 50);
    assert_eq!(map.get(3_000).unwrap(), None);
    assert_eq!(map.get(2_149).unwrap(), Some(2));
}
