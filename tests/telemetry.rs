//! Cross-layer telemetry conservation tests.
//!
//! Every layer of the stack counts into its own `MetricSet`;
//! `PaxPool::telemetry()` collects them into one snapshot. Because each
//! coherence message is counted once at the cache and once at the device
//! (and each durable write once at the media), the per-component numbers
//! must satisfy conservation laws — any double count or missed count
//! breaks an equality here.

use libpax::{MemSpace, PaxConfig, PaxPool};
use pax_pm::PoolConfig;
use pax_telemetry::{TelemetrySnapshot, TraceBuf};

fn config() -> PaxConfig {
    PaxConfig::default()
        .with_pool(PoolConfig::small().with_data_bytes(8 << 20).with_log_bytes(64 << 20))
}

/// A deterministic mixed workload: fresh writes, re-reads, re-writes,
/// across two persisted epochs.
fn run_workload(pool: &PaxPool) {
    let vpm = pool.vpm();
    for i in 0..64u64 {
        vpm.write_u64(i * 64, i).expect("write");
    }
    for i in 0..64u64 {
        assert_eq!(vpm.read_u64(i * 64).expect("read"), i);
    }
    pool.persist().expect("persist epoch 1");
    for i in 0..32u64 {
        vpm.write_u64(i * 64, i + 100).expect("rewrite");
    }
    for i in 64..96u64 {
        vpm.write_u64(i * 64, i).expect("write");
    }
    pool.persist().expect("persist epoch 2");
}

fn assert_conservation(t: &TelemetrySnapshot) {
    let rd_shared = t.counter("device", "rd_shared");
    let rd_own = t.counter("device", "rd_own");

    // Every undo entry covers a line the host first acquired exclusively.
    assert!(
        t.counter("device", "undo_entries") <= rd_own,
        "undo_entries {} > rd_own {rd_own}",
        t.counter("device", "undo_entries"),
    );

    // The cache's exclusive requests are exactly the device's RdOwns, and
    // its shared fills exactly the RdShareds — nothing is counted twice
    // and nothing bypasses the home agent.
    assert_eq!(t.counter("host_cache", "write_upgrades"), rd_own);
    assert_eq!(t.counter("host_cache", "read_misses"), rd_shared);

    // Every read the device serves is resolved from the HBM buffer or
    // from PM — no third source, no unserved request.
    assert_eq!(
        t.counter("device", "hbm_read_hits") + t.counter("device", "pm_reads"),
        rd_shared + rd_own,
        "HBM hits + PM reads must account for every served read"
    );

    // The synthesized link view: every request earns a response.
    let msgs = rd_shared
        + rd_own
        + t.counter("device", "clean_evicts")
        + t.counter("device", "dirty_evicts")
        + t.counter("device", "snoops_sent");
    assert_eq!(t.counter("cxl", "messages"), 2 * msgs);
}

#[test]
fn conservation_invariants_hold_on_a_deterministic_workload() {
    let pool = PaxPool::create(config()).expect("pool");
    run_workload(&pool);
    let t = pool.telemetry();

    // All four layers report, in stack order.
    let names: Vec<&str> = t.components.iter().map(|c| c.component.as_str()).collect();
    assert_eq!(names, vec!["host_cache", "cxl", "device", "media"]);
    assert_conservation(&t);

    // The workload actually exercised the counters.
    assert!(t.counter("device", "rd_own") >= 96);
    assert!(t.counter("device", "persists") == 2);
    assert!(t.counter("media", "line_writes") > 0);
}

#[test]
fn conservation_invariants_hold_summed_across_shards() {
    // The sharded device keeps one MetricSet per bank;
    // `PaxPool::telemetry()` must merge them so the cross-layer
    // conservation laws keep holding on the summed counters, with the
    // shard count surfaced as its own dimension.
    let cfg = config().with_device(pax_device::DeviceConfig::default().with_shards(4));
    let pool = PaxPool::create(cfg).expect("pool");
    run_workload(&pool);
    let t = pool.telemetry();

    assert_eq!(t.counter("device", "shards"), 4);
    assert_conservation(&t);

    // Same workload as the unsharded test: the summed traffic counters
    // must not change with the bank count.
    assert!(t.counter("device", "rd_own") >= 96);
    assert_eq!(t.counter("device", "persists"), 2);
    let unsharded = {
        let pool = PaxPool::create(config()).expect("pool");
        run_workload(&pool);
        pool.telemetry()
    };
    for name in ["rd_own", "rd_shared", "undo_entries", "persists"] {
        assert_eq!(
            t.counter("device", name),
            unsharded.counter("device", name),
            "summed {name} must match the 1-shard run"
        );
    }
}

#[test]
fn telemetry_diff_isolates_an_epoch_and_preserves_conservation() {
    let pool = PaxPool::create(config()).expect("pool");
    run_workload(&pool);
    let before = pool.telemetry();

    let vpm = pool.vpm();
    for i in 0..16u64 {
        vpm.write_u64((200 + i) * 64, i).expect("write");
    }
    pool.persist().expect("persist");
    let delta = pool.telemetry().diff(&before);

    assert_eq!(delta.counter("device", "persists"), 1);
    assert_eq!(delta.counter("device", "undo_entries"), 16);
    // Conservation laws are linear, so they hold on intervals too.
    assert_conservation(&delta);
}

#[test]
fn telemetry_and_trace_survive_a_crash() {
    let pool = PaxPool::create(config()).expect("pool");
    run_workload(&pool);
    let vpm = pool.vpm();
    for i in 0..8u64 {
        vpm.write_u64(i * 64, 999).expect("write");
    }
    let live = pool.telemetry();

    let _pm = pool.crash().expect("crash");

    // The post-crash snapshot still carries the device-side components
    // with their final counts (the host cache died with power, but its
    // registry is still readable).
    let post = pool.telemetry();
    for name in ["host_cache", "cxl", "device", "media"] {
        assert!(post.component(name).is_some(), "missing {name} after crash");
    }
    assert_eq!(post.counter("device", "undo_entries"), live.counter("device", "undo_entries"));
    assert!(post.counter("media", "crashes") >= 1);

    // The trace dump is parseable and ends with the crash event.
    let dump = pool.trace_dump();
    let records = TraceBuf::parse_json_lines(&dump).expect("parse dump");
    assert!(!records.is_empty());
    let last = records.last().unwrap();
    assert!(
        matches!(last.event, pax_telemetry::TraceEvent::Crash { .. }),
        "dump must end with the crash: {last:?}"
    );
}

#[test]
fn telemetry_json_renders_every_component() {
    let pool = PaxPool::create(config()).expect("pool");
    run_workload(&pool);
    let rendered = pool.telemetry().to_json().render();
    for key in ["\"host_cache\"", "\"cxl\"", "\"device\"", "\"media\"", "\"undo_entries\""] {
        assert!(rendered.contains(key), "JSON missing {key}: {rendered}");
    }
}
