//! Differential allocator tests: the first-fit [`Heap`] and the
//! llfree-style [`BitmapAlloc`] run the same schedules behind the same
//! [`PmAllocator`] trait and must both keep the allocator contract:
//!
//! * returned blocks are 8-aligned, disjoint, and inside the space;
//! * data written to a block survives every later alloc/free;
//! * freeing everything returns `live_allocations()` to 0 (no leaks);
//! * after an armed crash at *any* durable-write step, re-attaching
//!   recovers exactly the blocks live at the recovered epoch — contents
//!   intact, accounting exact, and fresh allocations disjoint from them
//!   (§3.4: recovering the pool recovers its allocator).

use std::collections::HashMap;

use libpax::{Heap, MemSpace, PaxConfig, PaxPool, PmAllocator, VPm, VolatileSpace};
use pax_alloc::BitmapAlloc;
use pax_pm::PoolConfig;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Fill a block with a pattern derived from `tag`, so later integrity
/// checks can detect any cross-block clobbering.
fn pattern(tag: u64, len: u64) -> Vec<u8> {
    (0..len).map(|i| (tag.wrapping_mul(31).wrapping_add(i) % 251) as u8).collect()
}

/// One live block in the oracle: where, how long, which fill.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Block {
    addr: u64,
    len: u64,
    tag: u64,
}

fn write_block<S: MemSpace, A: PmAllocator<S>>(a: &A, len: u64, tag: u64) -> libpax::Result<Block> {
    let addr = a.alloc(len)?;
    a.space().write_bytes(addr, &pattern(tag, len))?;
    Ok(Block { addr, len, tag })
}

fn check_block<S: MemSpace, A: PmAllocator<S>>(a: &A, b: &Block) -> Result<(), String> {
    let mut buf = vec![0u8; b.len as usize];
    a.space().read_bytes(b.addr, &mut buf).map_err(|e| format!("read {:#x}: {e}", b.addr))?;
    if buf != pattern(b.tag, b.len) {
        return Err(format!("block {:#x} (+{}) lost its fill pattern", b.addr, b.len));
    }
    Ok(())
}

fn assert_disjoint(blocks: &[Block]) -> Result<(), String> {
    // Byte-range disjointness; clobbering of any padding the allocator
    // reserves beyond `len` is caught by the fill-pattern checks instead.
    let mut spans: Vec<(u64, u64)> = blocks.iter().map(|b| (b.addr, b.addr + b.len)).collect();
    spans.sort_unstable();
    for w in spans.windows(2) {
        if w[0].1 > w[1].0 {
            return Err(format!("blocks overlap: {:?} vs {:?}", w[0], w[1]));
        }
    }
    Ok(())
}

/// Runs a schedule of (selector, len) ops on `a`; returns the surviving
/// blocks. Selector < 160 allocates, else frees a pseudo-random live
/// block — biased toward allocation so the live set grows.
fn run_schedule<S: MemSpace, A: PmAllocator<S>>(
    a: &A,
    ops: &[(u8, u16)],
) -> Result<Vec<Block>, String> {
    let mut live: Vec<Block> = Vec::new();
    for (i, &(sel, rawlen)) in ops.iter().enumerate() {
        if sel < 160 || live.is_empty() {
            let len = u64::from(rawlen % 480 + 1);
            let b = write_block(a, len, i as u64).map_err(|e| format!("alloc #{i}: {e}"))?;
            if b.addr % 8 != 0 {
                return Err(format!("alloc #{i} returned misaligned {:#x}", b.addr));
            }
            live.push(b);
        } else {
            let victim = live.swap_remove(sel as usize * (i + 1) % live.len());
            a.free(victim.addr, victim.len).map_err(|e| format!("free #{i}: {e}"))?;
        }
        // Integrity + disjointness hold after every step, not just at the
        // end — catches transient clobbering by allocator metadata.
        if i % 16 == 0 {
            assert_disjoint(&live)?;
            for b in &live {
                check_block(a, b)?;
            }
        }
    }
    assert_disjoint(&live)?;
    for b in &live {
        check_block(a, b)?;
    }
    Ok(live)
}

fn drain<S: MemSpace, A: PmAllocator<S>>(a: &A, live: Vec<Block>) -> Result<(), String> {
    for b in live {
        check_block(a, &b)?;
        a.free(b.addr, b.len).map_err(|e| format!("drain free: {e}"))?;
    }
    let n = a.live_allocations().map_err(|e| format!("live: {e}"))?;
    if n != 0 {
        return Err(format!("leak: {n} live after freeing everything"));
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// The same random schedule holds every invariant on both allocators.
    #[test]
    fn schedules_hold_invariants_on_both_allocators(
        ops in proptest::collection::vec((any::<u8>(), any::<u16>()), 1..140),
    ) {
        let heap = Heap::attach(VolatileSpace::new(1 << 20)).unwrap();
        let live = run_schedule(&heap, &ops).map_err(TestCaseError::fail)?;
        drain(&heap, live).map_err(TestCaseError::fail)?;

        let bm = BitmapAlloc::attach(VolatileSpace::new(1 << 20)).unwrap();
        let live = run_schedule(&bm, &ops).map_err(TestCaseError::fail)?;
        drain(&bm, live).map_err(TestCaseError::fail)?;
    }
}

// -- crash fuzz over vPM -------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Which {
    Heap,
    Bitmap,
}

/// Either allocator attached to a pool's vPM. Implements [`PmAllocator`]
/// itself, so the same generic helpers drive both (the differential
/// requirement).
#[derive(Clone)]
enum VpmAlloc {
    Heap(Heap<VPm>),
    Bitmap(BitmapAlloc<VPm>),
}

impl VpmAlloc {
    fn attach(which: Which, vpm: VPm) -> libpax::Result<Self> {
        Ok(match which {
            Which::Heap => VpmAlloc::Heap(Heap::attach(vpm)?),
            Which::Bitmap => VpmAlloc::Bitmap(BitmapAlloc::attach(vpm)?),
        })
    }

    /// What `live_allocations` should report for `blocks` (the unit is
    /// allocator-specific: blocks for Heap, frames for Bitmap).
    fn expected_live(&self, blocks: &[Block]) -> u64 {
        match self {
            VpmAlloc::Heap(_) => blocks.len() as u64,
            VpmAlloc::Bitmap(_) => blocks.iter().map(|b| b.len.div_ceil(32).max(1)).sum(),
        }
    }
}

impl PmAllocator<VPm> for VpmAlloc {
    fn space(&self) -> &VPm {
        match self {
            VpmAlloc::Heap(a) => a.space(),
            VpmAlloc::Bitmap(a) => PmAllocator::space(a),
        }
    }

    fn alloc(&self, len: u64) -> libpax::Result<u64> {
        match self {
            VpmAlloc::Heap(a) => a.alloc(len),
            VpmAlloc::Bitmap(a) => PmAllocator::alloc(a, len),
        }
    }

    fn free(&self, addr: u64, len: u64) -> libpax::Result<()> {
        match self {
            VpmAlloc::Heap(a) => a.free(addr, len),
            VpmAlloc::Bitmap(a) => PmAllocator::free(a, addr, len),
        }
    }

    fn root(&self) -> libpax::Result<u64> {
        match self {
            VpmAlloc::Heap(a) => a.root(),
            VpmAlloc::Bitmap(a) => PmAllocator::root(a),
        }
    }

    fn set_root(&self, addr: u64) -> libpax::Result<()> {
        match self {
            VpmAlloc::Heap(a) => a.set_root(addr),
            VpmAlloc::Bitmap(a) => PmAllocator::set_root(a, addr),
        }
    }

    fn live_allocations(&self) -> libpax::Result<u64> {
        match self {
            VpmAlloc::Heap(a) => a.live_allocations(),
            VpmAlloc::Bitmap(a) => PmAllocator::live_allocations(a),
        }
    }
}

fn pool_config() -> PaxConfig {
    // Log capacity far above any schedule, so no implicit epoch closes.
    PaxConfig::default()
        .with_pool(PoolConfig::small().with_data_bytes(1 << 20).with_log_bytes(8 << 20))
}

/// Runs a seeded alloc/free/persist schedule with the crash clock armed
/// `arm` durable-write steps in (never, when `None`), crashes, reopens,
/// re-attaches, and verifies the §3.4 recovery contract. Returns the
/// clock steps the unarmed run consumed, for sweep planning.
fn run_crash_schedule(which: Which, seed: u64, arm: Option<u64>) -> Result<u64, String> {
    let pool = PaxPool::create(pool_config()).map_err(|e| format!("create: {e}"))?;
    let clock = pool.crash_clock().map_err(|e| format!("clock: {e}"))?;
    if let Some(offset) = arm {
        clock.arm(clock.steps_taken() + offset);
    }

    let mut live: Vec<Block> = Vec::new();
    let mut at_close: HashMap<u64, Vec<Block>> = HashMap::new();
    // The fresh pool's committed epoch: 0, the empty image.
    at_close.insert(0, Vec::new());
    let mut tag = 1u64;

    // The armed clock can fire inside attach itself — a legal crash
    // point (mid-format / mid-recovery); the contract still must hold.
    let mut run = || -> libpax::Result<()> {
        let a = VpmAlloc::attach(which, pool.vpm())?;
        let mut rng = StdRng::seed_from_u64(seed);
        for i in 0..60 {
            if live.is_empty() || rng.gen_range(0..10u32) < 6 {
                let len = rng.gen_range(16..300u64);
                live.push(write_block(&a, len, tag)?);
                tag += 1;
            } else {
                let idx = rng.gen_range(0..live.len());
                let b = live.swap_remove(idx);
                a.free(b.addr, b.len)?;
            }
            if i % 6 == 5 {
                let e = pool.persist()?;
                at_close.insert(e, live.clone());
            }
        }
        let e = pool.persist()?;
        at_close.insert(e, live.clone());
        Ok(())
    };
    if let Err(e) = run() {
        if !e.is_crash() {
            return Err(format!("[{which:?}] non-crash failure mid-schedule: {e}"));
        }
    }
    let steps_taken = clock.steps_taken();

    // Crash, reopen, re-attach: recovery is the same attach call.
    let pm = pool.crash().map_err(|e| format!("crash: {e}"))?;
    let pool = PaxPool::open(pm, pool_config()).map_err(|e| format!("open: {e}"))?;
    let committed = pool.committed_epoch().map_err(|e| format!("committed: {e}"))?;
    let expected = at_close
        .get(&committed)
        .ok_or(format!("[{which:?}] recovered epoch {committed} was never a close point"))?;

    let a = VpmAlloc::attach(which, pool.vpm())
        .map_err(|e| format!("[{which:?}] re-attach after crash at epoch {committed}: {e}"))?;

    // 1. Every block live at the recovered epoch reads back intact.
    for b in expected {
        check_block(&a, b).map_err(|e| format!("[{which:?}] epoch {committed}: {e}"))?;
    }
    // 2. Accounting is exact: no leaked, no lost allocations.
    let got = a.live_allocations().map_err(|e| format!("live: {e}"))?;
    if got != a.expected_live(expected) {
        return Err(format!(
            "[{which:?}] epoch {committed}: live_allocations {got} != expected {} ({} blocks)",
            a.expected_live(expected),
            expected.len(),
        ));
    }
    // 3. The recovered allocator keeps allocating correctly: new blocks
    //    land disjoint from every recovered block (overwriting none).
    let mut all = expected.clone();
    for i in 0..12u64 {
        let b = write_block(&a, 64 + i * 24, 0xC0DE + i).map_err(|e| format!("post: {e}"))?;
        all.push(b);
    }
    assert_disjoint(&all).map_err(|e| format!("[{which:?}] after recovery: {e}"))?;
    for b in &all {
        check_block(&a, b).map_err(|e| format!("[{which:?}] post-recovery: {e}"))?;
    }
    Ok(steps_taken)
}

/// The acceptance differential: for each allocator, crash at every
/// sampled durable-write step of the same seeded schedule and prove
/// recovery is leak-free and intact each time.
#[test]
fn armed_crash_sweep_recovers_both_allocators() {
    for which in [Which::Heap, Which::Bitmap] {
        for seed in [7u64, 40] {
            let total = run_crash_schedule(which, seed, None)
                .unwrap_or_else(|e| panic!("unarmed run failed: {e}"));
            assert!(total > 0);
            // Sweep ~24 crash points spread over the whole schedule.
            let stride = (total / 24).max(1);
            let mut arm = 1;
            while arm <= total {
                run_crash_schedule(which, seed, Some(arm))
                    .unwrap_or_else(|e| panic!("crash at step {arm}/{total}: {e}"));
                arm += stride;
            }
        }
    }
}

// -- structures over the bitmap allocator --------------------------------

#[test]
fn structures_run_unmodified_over_bitmap_alloc() {
    // One structure per space (one root pointer each), same volatile-
    // style code as over Heap.
    let v: libpax::PVec<u64, _, _> =
        libpax::PVec::attach(BitmapAlloc::attach(VolatileSpace::new(1 << 20)).unwrap()).unwrap();
    for i in 0..500 {
        v.push(i).unwrap();
    }
    assert_eq!(v.len().unwrap(), 500);
    assert_eq!(v.get(499).unwrap(), Some(499));

    let m: libpax::PHashMap<u64, u64, _, _> =
        libpax::PHashMap::attach(BitmapAlloc::attach(VolatileSpace::new(1 << 20)).unwrap())
            .unwrap();
    for i in 0..300 {
        m.insert(i, i * 10).unwrap();
    }
    assert_eq!(m.get(123).unwrap(), Some(1230));
    m.remove(123).unwrap();
    assert_eq!(m.get(123).unwrap(), None);

    let l: libpax::PList<u32, _, _> =
        libpax::PList::attach(BitmapAlloc::attach(VolatileSpace::new(1 << 20)).unwrap()).unwrap();
    l.push_back(2).unwrap();
    l.push_front(1).unwrap();
    assert_eq!(l.to_vec().unwrap(), vec![1, 2]);

    let t: libpax::PBTreeMap<u64, u64, _, _> =
        libpax::PBTreeMap::attach(BitmapAlloc::attach(VolatileSpace::new(1 << 20)).unwrap())
            .unwrap();
    for i in (0..100).rev() {
        t.insert(i, i).unwrap();
    }
    assert_eq!(t.first().unwrap(), Some((0, 0)));

    let r: libpax::PRing<u64, _, _> =
        libpax::PRing::create(BitmapAlloc::attach(VolatileSpace::new(1 << 20)).unwrap(), 8)
            .unwrap();
    r.push(9).unwrap();
    assert_eq!(r.pop().unwrap(), Some(9));
}

/// A structure living on the bitmap allocator survives crash + reopen
/// through the `Persistent::new_in` facade.
#[test]
fn persistent_new_in_recovers_over_bitmap_alloc() {
    let pool = PaxPool::create(pool_config()).unwrap();
    {
        let alloc = BitmapAlloc::attach(pool.vpm()).unwrap();
        let ht: libpax::Persistent<libpax::PHashMap<u64, u64, VPm, BitmapAlloc<VPm>>> =
            libpax::Persistent::new_in(alloc).unwrap();
        for i in 0..200 {
            ht.insert(i, i + 1000).unwrap();
        }
        pool.persist().unwrap();
    }
    let pm = pool.crash().unwrap();
    let pool = PaxPool::open(pm, pool_config()).unwrap();
    let alloc = BitmapAlloc::attach(pool.vpm()).unwrap();
    assert!(alloc.recovery_stats().live_frames > 0);
    let ht: libpax::Persistent<libpax::PHashMap<u64, u64, VPm, BitmapAlloc<VPm>>> =
        libpax::Persistent::new_in(alloc).unwrap();
    for i in 0..200 {
        assert_eq!(ht.get(i).unwrap(), Some(i + 1000));
    }
}
