//! Property-based crash-consistency tests.
//!
//! The central invariant of the paper: *after recovery, the application
//! always sees vPM in the state of the last completed `persist()`* —
//! for any operation sequence, any persist placement, and any crash
//! point. proptest generates those inputs; a `std::collections::HashMap`
//! model tracks what each persisted snapshot must contain.

use std::collections::HashMap as StdMap;

use libpax::{Heap, PHashMap, PaxConfig, PaxPool};
use pax_pm::PoolConfig;
use proptest::prelude::*;

fn config() -> PaxConfig {
    PaxConfig::default()
        .with_pool(PoolConfig::small().with_data_bytes(8 << 20).with_log_bytes(64 << 20))
}

#[derive(Debug, Clone)]
enum Action {
    Insert(u64, u64),
    Remove(u64),
    Persist,
}

fn action_strategy() -> impl Strategy<Value = Action> {
    prop_oneof![
        4 => (0u64..64, any::<u64>()).prop_map(|(k, v)| Action::Insert(k, v)),
        2 => (0u64..64).prop_map(Action::Remove),
        1 => Just(Action::Persist),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// For any op/persist sequence, a crash at the end recovers exactly
    /// the model state at the last persist.
    #[test]
    fn recovery_restores_last_persisted_snapshot(
        actions in proptest::collection::vec(action_strategy(), 1..120)
    ) {
        let pool = PaxPool::create(config()).unwrap();
        let map: PHashMap<u64, u64, _, Heap<_>> =
            PHashMap::attach(Heap::attach(pool.vpm()).unwrap()).unwrap();

        let mut model: StdMap<u64, u64> = StdMap::new();
        let mut snapshot: StdMap<u64, u64> = StdMap::new();

        for a in &actions {
            match a {
                Action::Insert(k, v) => {
                    map.insert(*k, *v).unwrap();
                    model.insert(*k, *v);
                }
                Action::Remove(k) => {
                    map.remove(*k).unwrap();
                    model.remove(k);
                }
                Action::Persist => {
                    pool.persist().unwrap();
                    snapshot = model.clone();
                }
            }
        }

        let pm = pool.crash().unwrap();
        let pool = PaxPool::open(pm, config()).unwrap();
        let map: PHashMap<u64, u64, _, Heap<_>> =
            PHashMap::attach(Heap::attach(pool.vpm()).unwrap()).unwrap();
        let mut recovered: Vec<(u64, u64)> = map.entries().unwrap();
        recovered.sort_unstable();
        let mut expected: Vec<(u64, u64)> = snapshot.into_iter().collect();
        expected.sort_unstable();
        prop_assert_eq!(recovered, expected);
    }

    /// Crashing at an arbitrary device step (including mid-persist) never
    /// exposes anything but the last *completed* persist.
    #[test]
    fn arbitrary_crash_points_are_safe(
        kvs in proptest::collection::vec((0u64..32, any::<u64>()), 1..40),
        crash_offset in 0u64..400,
    ) {
        let pool = PaxPool::create(config()).unwrap();
        let map: PHashMap<u64, u64, _, Heap<_>> =
            PHashMap::attach(Heap::attach(pool.vpm()).unwrap()).unwrap();

        // Epoch 1: a known-good snapshot.
        let mut snapshot: StdMap<u64, u64> = StdMap::new();
        for (k, v) in kvs.iter().take(kvs.len() / 2) {
            map.insert(*k, *v).unwrap();
            snapshot.insert(*k, *v);
        }
        pool.persist().unwrap();

        // Epoch 2 with an armed crash clock: ops and the persist may die
        // anywhere.
        let clock = pool.crash_clock().unwrap();
        clock.arm(clock.steps_taken() + crash_offset);
        let mut epoch2 = snapshot.clone();
        let mut completed = true;
        for (k, v) in kvs.iter().skip(kvs.len() / 2) {
            if map.insert(*k, *v).is_err() {
                completed = false;
                break;
            }
            epoch2.insert(*k, *v);
        }
        let persisted_epoch2 = completed && pool.persist().is_ok();

        let expected = if persisted_epoch2 { epoch2 } else { snapshot };

        let pm = pool.crash().unwrap();
        let pool = PaxPool::open(pm, config()).unwrap();
        let map: PHashMap<u64, u64, _, Heap<_>> =
            PHashMap::attach(Heap::attach(pool.vpm()).unwrap()).unwrap();
        let mut recovered: Vec<(u64, u64)> = map.entries().unwrap();
        recovered.sort_unstable();
        let mut expected: Vec<(u64, u64)> = expected.into_iter().collect();
        expected.sort_unstable();
        prop_assert_eq!(recovered, expected);
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    /// The persistent heap allocator never hands out overlapping blocks,
    /// on either space, under arbitrary alloc/free interleavings.
    #[test]
    fn heap_allocations_never_overlap(
        sizes in proptest::collection::vec(1u64..200, 1..40),
        free_mask in proptest::collection::vec(any::<bool>(), 1..40),
    ) {
        let pool = PaxPool::create(config()).unwrap();
        let heap = Heap::attach(pool.vpm()).unwrap();
        let mut live: Vec<(u64, u64)> = Vec::new();
        for (i, &len) in sizes.iter().enumerate() {
            let addr = heap.alloc(len).unwrap();
            for (a, l) in &live {
                let disjoint = addr + len <= *a || *a + *l <= addr;
                prop_assert!(disjoint, "alloc {addr}+{len} overlaps {a}+{l}");
            }
            live.push((addr, len));
            if free_mask.get(i).copied().unwrap_or(false) && live.len() > 1 {
                let (a, l) = live.swap_remove(live.len() / 2);
                heap.free(a, l).unwrap();
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    /// Non-blocking persist (§6): with an overlapped epoch draining and a
    /// crash at an arbitrary device step, recovery lands on whichever
    /// epoch had committed — never a mix.
    #[test]
    fn overlapped_epochs_crash_anywhere(
        crash_offset in 0u64..300,
        lines in 1u64..24,
    ) {
        let pool = PaxPool::create(config()).unwrap();
        let vpm = {

            pool.vpm()
        };
        use libpax::MemSpace;

        // Epoch 1: value 1 on every line; committed synchronously.
        for i in 0..lines {
            vpm.write_u64(i * 64, 1).unwrap();
        }
        pool.persist().unwrap();

        // Epoch 2: value 2; persisted asynchronously with an armed crash.
        let clock = pool.crash_clock().unwrap();
        clock.arm(clock.steps_taken() + crash_offset);
        let mut committed2 = false;
        let launched = (|| -> libpax::Result<()> {
            for i in 0..lines {
                vpm.write_u64(i * 64, 2)?;
            }
            pool.persist_async()?;
            // Drive the drain with epoch-3 activity + polls.
            for i in 0..lines {
                vpm.write_u64((lines + i) * 64, 3)?;
                if pool.persist_poll()? == Some(2) {
                    committed2 = true;
                }
            }
            pool.persist_wait()?;
            committed2 = true;
            Ok(())
        })();
        let _ = launched;

        let pm = pool.crash().unwrap();
        let pool = PaxPool::open(pm, config()).unwrap();
        let committed = pool.committed_epoch().unwrap();
        let vpm = pool.vpm();
        // Whatever committed, the data must match that epoch exactly.
        let expect = match committed {
            1 => 1u64,
            2 => 2u64,
            other => return Err(TestCaseError::fail(format!("unexpected epoch {other}"))),
        };
        if committed2 {
            prop_assert_eq!(committed, 2, "wait() reported commit");
        }
        for i in 0..lines {
            let v = vpm.read_u64(i * 64).unwrap();
            prop_assert_eq!(v, expect, "line {} under epoch {}", i, committed);
        }
        // Epoch-3 writes can never be visible (never persisted).
        for i in 0..lines {
            prop_assert_eq!(vpm.read_u64((lines + i) * 64).unwrap(), 0);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// A crash injected mid-epoch is replayable from the trace dump: the
    /// dump parses back, contains exactly one crash event, and every undo
    /// log append of the in-flight epoch precedes it in sequence order —
    /// the forensic record recovery tooling needs to explain a rollback.
    #[test]
    fn mid_epoch_crash_replays_from_trace_dump(
        kvs in proptest::collection::vec((0u64..48, any::<u64>()), 4..40),
        crash_offset in 5u64..200,
    ) {
        use pax_telemetry::{TraceBuf, TraceEvent};

        let pool = PaxPool::create(config()).unwrap();
        let map: PHashMap<u64, u64, _, Heap<_>> =
            PHashMap::attach(Heap::attach(pool.vpm()).unwrap()).unwrap();

        // Epoch 1 commits; epoch 2 dies somewhere in the middle.
        for (k, v) in kvs.iter().take(kvs.len() / 2) {
            map.insert(*k, *v).unwrap();
        }
        pool.persist().unwrap();
        let clock = pool.crash_clock().unwrap();
        clock.arm(clock.steps_taken() + crash_offset);
        for (k, v) in kvs.iter().skip(kvs.len() / 2) {
            if map.insert(*k, *v).is_err() {
                break;
            }
        }
        let pm = pool.crash().unwrap();

        // The dump round-trips and is totally ordered by SimClock.
        let dump = pool.trace_dump();
        let records = TraceBuf::parse_json_lines(&dump).unwrap();
        prop_assert!(!records.is_empty());
        prop_assert!(
            records.windows(2).all(|w| w[0].seq < w[1].seq),
            "dump must be in sequence order"
        );

        // Exactly one crash, and it is the final record.
        let crashes: Vec<usize> = records
            .iter()
            .enumerate()
            .filter(|(_, r)| matches!(r.event, TraceEvent::Crash { .. }))
            .map(|(i, _)| i)
            .collect();
        prop_assert_eq!(crashes.len(), 1);
        let crash_idx = crashes[0];
        prop_assert_eq!(crash_idx, records.len() - 1);
        let crash_epoch = match records[crash_idx].event {
            TraceEvent::Crash { epoch } => epoch,
            _ => unreachable!(),
        };

        // Every log append of the in-flight epoch precedes the crash —
        // these are precisely the entries recovery will roll back.
        let appends: Vec<&pax_telemetry::TraceRecord> = records
            .iter()
            .filter(|r| matches!(r.event, TraceEvent::LogAppend { epoch, .. } if epoch == crash_epoch))
            .collect();
        for a in &appends {
            prop_assert!(a.seq < records[crash_idx].seq);
        }

        // Replay check: recovery rolls back a subset of the logged lines
        // (entries whose write back already landed still need undo; ones
        // that never left HBM don't reach PM at all — but no line outside
        // the trace's log appends may ever be rolled back).
        let logged: std::collections::HashSet<u64> = appends
            .iter()
            .map(|r| match r.event {
                TraceEvent::LogAppend { line, .. } => line,
                _ => unreachable!(),
            })
            .collect();
        let mut pm = pm;
        let mut replay_trace = TraceBuf::new(4096);
        let report = pax_device::recover_traced(&mut pm, &mut replay_trace).unwrap();
        let rolled: Vec<u64> = replay_trace
            .records()
            .filter_map(|r| match r.event {
                TraceEvent::RecoveryStep { line, .. } => Some(line),
                _ => None,
            })
            .collect();
        prop_assert_eq!(rolled.len(), report.rolled_back);
        for line in &rolled {
            prop_assert!(
                logged.contains(line),
                "recovery rolled back line {} the trace never logged", line
            );
        }
    }

    /// Virtual-time determinism (the scheduler's contract): the same
    /// write sequence interleaved with the same tick schedule, with the
    /// crash clock armed at the same step, replays the IDENTICAL crash
    /// state — crash outcome, committed epoch, and every recovered line.
    /// Holds with the adaptive budget controller on too: its inputs are
    /// queue depths (device state), never wall-clock time.
    #[test]
    fn identical_tick_schedules_replay_identical_crash_states(
        ticks in proptest::collection::vec(0u64..6, 8..32),
        crash_offset in 1u64..250,
        adaptive in any::<bool>(),
    ) {
        use libpax::MemSpace;
        use pax_device::{DeviceConfig, SchedConfig};

        let run = || {
            let mut cfg = config();
            if adaptive {
                cfg = cfg.with_device(
                    DeviceConfig::default()
                        .with_sched(SchedConfig::default().with_adaptive_watermarks(8, 2, 4)),
                );
            }
            let pool = PaxPool::create(cfg).unwrap();
            let vpm = pool.vpm();
            // A fresh pool's crash clock starts at step 0, so the same
            // offset names the same durable-write step in both runs.
            let clock = pool.crash_clock().unwrap();
            clock.arm(crash_offset);
            let outcome = (|| -> libpax::Result<()> {
                for (i, &n) in ticks.iter().enumerate() {
                    vpm.write_u64(i as u64 * 64, i as u64 + 1)?;
                    pool.run_device(n)?;
                    if i == ticks.len() / 2 {
                        pool.persist_async()?;
                    }
                }
                pool.persist()?;
                Ok(())
            })();
            let crashed = outcome.is_err();

            let pm = pool.crash().unwrap();
            let pool = PaxPool::open(pm, config()).unwrap();
            let committed = pool.committed_epoch().unwrap();
            let vpm = pool.vpm();
            let state: Vec<u64> =
                (0..ticks.len() as u64).map(|i| vpm.read_u64(i * 64).unwrap()).collect();
            (crashed, committed, state)
        };
        prop_assert_eq!(run(), run(), "same seed + same tick schedule must replay");
    }

    /// The ordered map obeys the same snapshot invariant as the hash map,
    /// and its structural invariants hold after recovery (mid-rebalance
    /// states roll back atomically).
    #[test]
    fn btree_recovery_restores_last_persisted_snapshot(
        actions in proptest::collection::vec(action_strategy(), 1..80)
    ) {
        use libpax::PBTreeMap;
        let pool = PaxPool::create(config()).unwrap();
        let map: PBTreeMap<u64, u64, _, Heap<_>> =
            PBTreeMap::attach(Heap::attach(pool.vpm()).unwrap()).unwrap();

        let mut model: std::collections::BTreeMap<u64, u64> = Default::default();
        let mut snapshot = model.clone();
        for a in &actions {
            match a {
                Action::Insert(k, v) => {
                    prop_assert_eq!(map.insert(*k, *v).unwrap(), model.insert(*k, *v));
                }
                Action::Remove(k) => {
                    prop_assert_eq!(map.remove(*k).unwrap(), model.remove(k));
                }
                Action::Persist => {
                    pool.persist().unwrap();
                    snapshot = model.clone();
                }
            }
        }
        let pm = pool.crash().unwrap();
        let pool = PaxPool::open(pm, config()).unwrap();
        let map: PBTreeMap<u64, u64, _, Heap<_>> =
            PBTreeMap::attach(Heap::attach(pool.vpm()).unwrap()).unwrap();
        map.check_invariants().unwrap();
        let recovered = map.entries().unwrap();
        let expected: Vec<(u64, u64)> = snapshot.into_iter().collect();
        prop_assert_eq!(recovered, expected);
    }
}
