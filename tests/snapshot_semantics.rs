//! Snapshot-semantics tests (§3.3): the recovered state always equals the
//! state at the most recent completed `persist()` — never a mix of
//! epochs, never a partial operation.

use libpax::{Heap, MemSpace, PHashMap, PaxConfig, PaxPool};
use pax_cache::CacheConfig;
use pax_device::{DeviceConfig, EvictionPolicy, HbmConfig};
use pax_pm::PoolConfig;

fn config() -> PaxConfig {
    PaxConfig::default()
        .with_pool(PoolConfig::small().with_data_bytes(8 << 20).with_log_bytes(32 << 20))
}

/// A tiny-everything config that forces heavy eviction traffic, so lines
/// reach PM mid-epoch — the hardest case for snapshot atomicity.
fn stress_config() -> PaxConfig {
    config().with_cache(CacheConfig::tiny(4 * 64, 2)).with_device(DeviceConfig::default().with_hbm(
        HbmConfig { capacity_bytes: 8 * 64, ways: 2, policy: EvictionPolicy::PreferDurable },
    ))
}

#[test]
fn epochs_transition_atomically() {
    // Write a "record" spanning many lines per epoch; a recovered pool
    // must never show lines from two different epochs.
    let pool = PaxPool::create(stress_config()).unwrap();
    let vpm = pool.vpm();
    let lines = 64u64;

    for epoch_val in 1..=3u64 {
        for i in 0..lines {
            vpm.write_u64(i * 64, epoch_val).unwrap();
        }
        pool.persist().unwrap();
    }
    // Epoch 4 in progress, not persisted:
    for i in 0..lines / 2 {
        vpm.write_u64(i * 64, 4).unwrap();
    }

    let pm = pool.crash().unwrap();
    let pool = PaxPool::open(pm, config()).unwrap();
    let vpm = pool.vpm();
    let first = vpm.read_u64(0).unwrap();
    assert_eq!(first, 3, "recovered state must be the last persisted epoch");
    for i in 0..lines {
        assert_eq!(vpm.read_u64(i * 64).unwrap(), 3, "line {i}: mixed-epoch state");
    }
}

#[test]
fn mid_epoch_writebacks_never_leak_into_the_snapshot() {
    // With a tiny HBM, epoch-2 data is proactively written to PM before
    // persist() — recovery must still return pure epoch-1 state.
    let pool = PaxPool::create(stress_config()).unwrap();
    let vpm = pool.vpm();
    let lines = 128u64;
    for i in 0..lines {
        vpm.write_u64(i * 64, 1).unwrap();
    }
    pool.persist().unwrap();

    for i in 0..lines {
        vpm.write_u64(i * 64, 2).unwrap();
    }
    // Plenty of device activity so background write back runs:
    for i in 0..lines {
        vpm.read_u64(i * 64).unwrap();
    }
    let metrics = pool.device_metrics().unwrap();
    assert!(metrics.device_writebacks > 0, "test needs mid-epoch write back to be meaningful");

    let pm = pool.crash().unwrap();
    let pool = PaxPool::open(pm, config()).unwrap();
    let report = pool.recovery_report().unwrap();
    assert!(report.rolled_back > 0, "rollback must undo the leaked writes");
    let vpm = pool.vpm();
    for i in 0..lines {
        assert_eq!(vpm.read_u64(i * 64).unwrap(), 1, "line {i}");
    }
}

#[test]
fn persist_returns_monotonic_epochs() {
    let pool = PaxPool::create(config()).unwrap();
    let vpm = pool.vpm();
    let mut last = 0;
    for i in 0..10u64 {
        vpm.write_u64(0, i).unwrap();
        let e = pool.persist().unwrap();
        assert_eq!(e, last + 1);
        last = e;
    }
    assert_eq!(pool.committed_epoch().unwrap(), 10);
}

#[test]
fn empty_epoch_persists_cleanly() {
    let pool = PaxPool::create(config()).unwrap();
    assert_eq!(pool.persist().unwrap(), 1);
    assert_eq!(pool.persist().unwrap(), 2);
    let pm = pool.crash().unwrap();
    let pool = PaxPool::open(pm, config()).unwrap();
    assert_eq!(pool.committed_epoch().unwrap(), 2);
}

#[test]
fn reads_do_not_dirty_the_snapshot() {
    let pool = PaxPool::create(config()).unwrap();
    let vpm = pool.vpm();
    vpm.write_u64(0, 5).unwrap();
    pool.persist().unwrap();
    let before = pool.device_metrics().unwrap().undo_entries;
    for i in 0..64u64 {
        vpm.read_u64(i * 64).unwrap();
    }
    let after = pool.device_metrics().unwrap().undo_entries;
    assert_eq!(before, after, "reads must not generate undo entries");
}

#[test]
fn structure_level_snapshot_equality() {
    // Run the same structure twice: once with a crash after persist, once
    // without any extra ops; recovered entries must match exactly.
    let build = |extra_garbage: bool| -> Vec<(u64, u64)> {
        let pool = PaxPool::create(config()).unwrap();
        let map: PHashMap<u64, u64, _, Heap<_>> =
            PHashMap::attach(Heap::attach(pool.vpm()).unwrap()).unwrap();
        for k in 0..200u64 {
            map.insert(k, k * 7).unwrap();
        }
        for k in (0..200u64).step_by(3) {
            map.remove(k).unwrap();
        }
        pool.persist().unwrap();
        if extra_garbage {
            for k in 500..600u64 {
                map.insert(k, 1).unwrap();
            }
        }
        let pm = pool.crash().unwrap();
        let pool = PaxPool::open(pm, config()).unwrap();
        let map: PHashMap<u64, u64, _, Heap<_>> =
            PHashMap::attach(Heap::attach(pool.vpm()).unwrap()).unwrap();
        let mut e = map.entries().unwrap();
        e.sort_unstable();
        e
    };
    assert_eq!(build(false), build(true));
}
