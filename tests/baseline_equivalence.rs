//! Cross-mechanism equivalence: the same structure code must compute the
//! same result on every memory space, and the crash-consistency
//! mechanisms must differ exactly where the paper says they do.

use libpax::{Heap, MemSpace, PHashMap, PaxConfig, PaxPool, VolatileSpace};
use pax_baselines::{Costed, DirectPmSpace, HybridSpace, PageFaultSpace, RedoSpace, WalSpace};
use pax_pm::PoolConfig;

fn pool_config() -> PoolConfig {
    PoolConfig::small().with_data_bytes(8 << 20).with_log_bytes(64 << 20)
}

fn drive<S: MemSpace>(space: S) -> Vec<(u64, u64)> {
    let m: PHashMap<u64, u64, S, Heap<S>> = PHashMap::attach(Heap::attach(space).unwrap()).unwrap();
    for k in 0..150u64 {
        m.insert(k, k + 1).unwrap();
    }
    for k in (0..150u64).step_by(3) {
        m.remove(k).unwrap();
    }
    let mut e = m.entries().unwrap();
    e.sort_unstable();
    e
}

#[test]
fn all_spaces_compute_identical_results() {
    let reference = drive(VolatileSpace::new(8 << 20));
    assert_eq!(drive(DirectPmSpace::new(8 << 20)), reference, "direct PM");
    assert_eq!(drive(WalSpace::create(pool_config()).unwrap()), reference, "undo WAL");
    assert_eq!(drive(RedoSpace::create(pool_config()).unwrap()), reference, "redo WAL");
    assert_eq!(
        drive(PageFaultSpace::create(pool_config()).unwrap()),
        reference,
        "page-fault tracking"
    );
    assert_eq!(drive(HybridSpace::create(pool_config()).unwrap()), reference, "hybrid");
    let pax = PaxPool::create(PaxConfig::default().with_pool(pool_config())).unwrap();
    assert_eq!(drive(pax.vpm()), reference, "PAX vPM");
}

#[test]
fn cost_profiles_differ_as_the_paper_describes() {
    // Identical byte-level workload on each mechanism.
    let workload = |s: &dyn Fn(u64, u64)| {
        for i in 0..100u64 {
            s(i * 4096, i); // one 8 B field per page: the sparse case §1 targets
        }
    };

    let wal = WalSpace::create(pool_config()).unwrap();
    workload(&|a, v| wal.write_u64(a, v).unwrap());
    let pf = PageFaultSpace::create(pool_config()).unwrap();
    workload(&|a, v| pf.write_u64(a, v).unwrap());
    let hy = HybridSpace::create(pool_config()).unwrap();
    workload(&|a, v| hy.write_u64(a, v).unwrap());
    let direct = DirectPmSpace::new(8 << 20);
    workload(&|a, v| direct.write_u64(a, v).unwrap());

    // §2: WAL stalls per mutated line; the others don't stall per store.
    assert!(wal.costs().sfences >= 100);
    assert_eq!(direct.costs().sfences, 0);
    assert_eq!(hy.costs().sfences, 0);

    // §1: traps are the page-based mechanism's signature cost.
    assert!(pf.costs().traps > 0);
    assert_eq!(wal.costs().traps, 0);
    assert_eq!(direct.costs().traps, 0);

    // §1: page-granularity logging amplifies writes far beyond line
    // granularity.
    assert!(
        pf.costs().write_amplification() > 10.0 * hy.costs().write_amplification(),
        "page {} vs hybrid {}",
        pf.costs().write_amplification(),
        hy.costs().write_amplification()
    );
}

#[test]
fn direct_pm_exposes_torn_operations_where_pax_does_not() {
    // The motivating §2 scenario: a multi-location structure operation is
    // interrupted. Under direct PM the tear is visible after reboot;
    // under PAX the snapshot hides it.

    // -- Direct PM: write 2 of 3 fields of a "record", then crash.
    let direct = DirectPmSpace::new(1 << 20);
    direct.write_u64(0, 0xA).unwrap(); // field 1
    direct.write_u64(64, 0xB).unwrap(); // field 2 (different line)
                                        // crash before field 3
    direct.crash();
    let torn =
        (direct.read_u64(0).unwrap(), direct.read_u64(64).unwrap(), direct.read_u64(128).unwrap());
    assert_eq!(torn, (0xA, 0xB, 0), "direct PM exposes the partial operation");

    // -- PAX: same partial operation, never persisted.
    let pax = PaxPool::create(PaxConfig::default().with_pool(pool_config())).unwrap();
    let vpm = pax.vpm();
    vpm.write_u64(0, 0xA).unwrap();
    vpm.write_u64(64, 0xB).unwrap();
    let pm = pax.crash().unwrap();
    let pax = PaxPool::open(pm, PaxConfig::default().with_pool(pool_config())).unwrap();
    let vpm = pax.vpm();
    assert_eq!(
        (vpm.read_u64(0).unwrap(), vpm.read_u64(64).unwrap(), vpm.read_u64(128).unwrap()),
        (0, 0, 0),
        "PAX rolls the torn operation back entirely"
    );
}

#[test]
fn wal_and_pax_recover_the_same_state_for_the_same_committed_work() {
    // Both mechanisms get the same committed prefix and the same
    // uncommitted suffix; both must recover to the prefix.
    let run_wal = || {
        let wal = WalSpace::create(pool_config()).unwrap();
        let m: PHashMap<u64, u64, _, Heap<_>> =
            PHashMap::attach(Heap::attach(wal.clone()).unwrap()).unwrap();
        wal.tx(|| {
            for k in 0..50 {
                m.insert(k, k).unwrap();
            }
            Ok(())
        })
        .unwrap();
        wal.begin_tx().unwrap();
        for k in 50..80 {
            m.insert(k, k).unwrap();
        }
        // no commit
        let pool = wal.crash().unwrap();
        let wal = WalSpace::open(pool).unwrap();
        let m: PHashMap<u64, u64, _, Heap<_>> =
            PHashMap::attach(Heap::attach(wal).unwrap()).unwrap();
        let mut e = m.entries().unwrap();
        e.sort_unstable();
        e
    };
    let run_pax = || {
        let pax = PaxPool::create(PaxConfig::default().with_pool(pool_config())).unwrap();
        let m: PHashMap<u64, u64, _, Heap<_>> =
            PHashMap::attach(Heap::attach(pax.vpm()).unwrap()).unwrap();
        for k in 0..50 {
            m.insert(k, k).unwrap();
        }
        pax.persist().unwrap();
        for k in 50..80 {
            m.insert(k, k).unwrap();
        }
        // no persist
        let pm = pax.crash().unwrap();
        let pax = PaxPool::open(pm, PaxConfig::default().with_pool(pool_config())).unwrap();
        let m: PHashMap<u64, u64, _, Heap<_>> =
            PHashMap::attach(Heap::attach(pax.vpm()).unwrap()).unwrap();
        let mut e = m.entries().unwrap();
        e.sort_unstable();
        e
    };
    assert_eq!(run_wal(), run_pax());
}
