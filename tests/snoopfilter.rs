//! Property-based equivalence tests for the ownership directory (snoop
//! filter) and the batched persist write-back pipeline.
//!
//! The directory is a pure performance structure: it may only elide
//! snoops whose answer the device already knows. These tests pin that
//! down as a behavioural equivalence — for ANY schedule of writes,
//! host evictions, background ticks, and persists:
//!
//! * with no crash, a filtered+batched device and an always-snoop
//!   unbatched device end with **byte-identical durable PM state**
//!   (only step counts may differ), and
//! * with the crash clock armed at an arbitrary durable-write step
//!   (including mid-persist), each device independently recovers to
//!   exactly its last committed snapshot.

use std::collections::HashMap;

use pax_cache::{CacheConfig, CoherentCache, HomeAgent};
use pax_device::{DeviceConfig, DirectoryConfig, PaxDevice};
use pax_pm::{CacheLine, LineAddr, PmPool, PoolConfig, Result};
use proptest::prelude::*;

/// Addresses the schedules touch (well inside `PoolConfig::small`).
const LINES: u64 = 48;

#[derive(Debug, Clone)]
enum Action {
    /// Host store of `filled(v)` through the coherent cache.
    Write(u64, u8),
    /// Host cache gives the line back (dirty eviction if modified).
    Evict(u64),
    /// Background virtual-time ticks.
    Tick(u64),
    /// Synchronous epoch persist.
    Persist,
}

fn action_strategy() -> impl Strategy<Value = Action> {
    prop_oneof![
        5 => (0u64..LINES, 1u8..255).prop_map(|(a, v)| Action::Write(a, v)),
        2 => (0u64..LINES).prop_map(Action::Evict),
        2 => (0u64..4).prop_map(Action::Tick),
        1 => Just(Action::Persist),
    ]
}

fn open(dir: DirectoryConfig, batch: usize, shards: usize) -> (PaxDevice, CoherentCache) {
    let pool = PmPool::create(PoolConfig::small()).unwrap();
    let config = DeviceConfig::default()
        .with_shards(shards)
        .with_directory(dir)
        .with_persist_wb_batch(batch);
    let device = PaxDevice::open(pool, config).unwrap();
    // A small host cache so schedules actually spill: the filtered case
    // (persist of a line the host already evicted) occurs organically.
    let cache = CoherentCache::new(CacheConfig::tiny(8 * 64, 2));
    (device, cache)
}

/// Executes `actions`, tracking the full model state and the state at
/// the last *committed* persist. Stops at the first error (crash).
fn apply(
    device: &mut PaxDevice,
    cache: &mut CoherentCache,
    actions: &[Action],
    model: &mut HashMap<u64, u8>,
    snapshot: &mut HashMap<u64, u8>,
) -> Result<()> {
    for a in actions {
        match a {
            Action::Write(addr, v) => {
                cache.write(LineAddr(*addr), CacheLine::filled(*v), device)?;
                model.insert(*addr, *v);
            }
            Action::Evict(addr) => {
                if let Some(data) = cache.snoop_invalidate(LineAddr(*addr)) {
                    device.dirty_evict(LineAddr(*addr), data)?;
                }
            }
            Action::Tick(n) => {
                device.tick(*n)?;
            }
            Action::Persist => {
                device.persist(cache)?;
                *snapshot = model.clone();
            }
        }
    }
    Ok(())
}

/// The durable post-crash contents of the schedule's address range.
fn durable_lines(device: PaxDevice) -> Vec<CacheLine> {
    let mut pool = device.crash_into_pool();
    (0..LINES)
        .map(|i| {
            let abs = pool.layout().vpm_to_pool(i).unwrap();
            pool.read_line(abs).unwrap()
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    /// Filtered + batched vs always-snoop + unbatched: identical durable
    /// bytes after the same schedule ends in a full persist.
    #[test]
    fn filtered_persist_is_durably_identical_to_unfiltered(
        actions in proptest::collection::vec(action_strategy(), 1..100),
        batch in 1usize..9,
        shards in 1usize..5,
    ) {
        let run = |dir: DirectoryConfig, batch: usize| {
            let (mut device, mut cache) = open(dir, batch, shards);
            let mut model = HashMap::new();
            let mut snapshot = HashMap::new();
            apply(&mut device, &mut cache, &actions, &mut model, &mut snapshot).unwrap();
            // Close the final epoch so no value is still in flight.
            device.persist(&mut cache).unwrap();
            (durable_lines(device), model)
        };
        let (filtered, model) = run(DirectoryConfig::enabled(), batch);
        let (unfiltered, _) = run(DirectoryConfig::disabled(), 1);
        prop_assert_eq!(&filtered, &unfiltered, "durable state must not depend on the filter");
        // Both also match the model (every line at its newest value).
        for i in 0..LINES {
            let want = model.get(&i).map_or(CacheLine::zeroed(), |&v| CacheLine::filled(v));
            prop_assert_eq!(&filtered[i as usize], &want, "line {}", i);
        }
    }

    /// With the crash clock armed at an arbitrary durable-write step —
    /// often mid-persist — a filtered device and an unfiltered device
    /// each recover exactly their own last committed snapshot.
    #[test]
    fn crash_anywhere_recovers_the_committed_snapshot_either_way(
        actions in proptest::collection::vec(action_strategy(), 1..80),
        crash_offset in 1u64..250,
        batch in 1usize..9,
    ) {
        for dir in [DirectoryConfig::enabled(), DirectoryConfig::disabled()] {
            let (mut device, mut cache) = open(dir, batch, 2);
            device.crash_clock().arm(crash_offset);
            let mut model = HashMap::new();
            let mut snapshot = HashMap::new();
            let outcome =
                apply(&mut device, &mut cache, &actions, &mut model, &mut snapshot);
            let final_persist = outcome.is_ok() && device.persist(&mut cache).is_ok();
            let expected = if final_persist { &model } else { &snapshot };

            // Crash, recover (PaxDevice::open runs §3.4 rollback), read.
            let pool = device.crash_into_pool();
            let config = DeviceConfig::default()
                .with_shards(2)
                .with_directory(dir)
                .with_persist_wb_batch(batch);
            let recovered = PaxDevice::open(pool, config).unwrap();
            let lines = durable_lines(recovered);
            for i in 0..LINES {
                let want =
                    expected.get(&i).map_or(CacheLine::zeroed(), |&v| CacheLine::filled(v));
                prop_assert_eq!(
                    &lines[i as usize], &want,
                    "filter={:?} line {} after crash at step {}", dir, i, crash_offset
                );
            }
        }
    }
}
