//! Fault-injection robustness: corrupted media, torn log entries, and
//! malformed pool files must never panic, and must never corrupt the
//! parts of recovery that remain valid.

use libpax::{MemSpace, PaxConfig, PaxPool};
use pax_device::{recover, UndoLog};
use pax_pm::{CacheLine, LineAddr, PmPool, PoolConfig};
use proptest::prelude::*;

fn config() -> PaxConfig {
    PaxConfig::default()
        .with_pool(PoolConfig::small().with_data_bytes(4 << 20).with_log_bytes(8 << 20))
}

/// Builds a pool that crashed mid-epoch-2 with committed epoch 1 and a
/// known durable state.
fn crashed_pool() -> PmPool {
    let pool = PaxPool::create(config()).unwrap();
    let vpm = pool.vpm();
    for i in 0..32u64 {
        vpm.write_u64(i * 64, 1).unwrap();
    }
    pool.persist().unwrap();
    for i in 0..32u64 {
        vpm.write_u64(i * 64, 2).unwrap();
    }
    // Drive background work so epoch-2 entries and some write backs land.
    for i in 0..64u64 {
        vpm.read_u64((32 + i % 8) * 64).unwrap();
    }
    pool.crash().unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 40, ..ProptestConfig::default() })]

    /// Arbitrary corruption of the *log region* never panics recovery.
    /// Entries whose checksum survives are applied; the rest are skipped.
    /// (Data-region guarantees require an intact log — this asserts
    /// memory-safety and absence of crashes/false magics, not semantics.)
    #[test]
    fn corrupted_log_region_never_panics(
        offsets in proptest::collection::vec(0u64..1_000, 1..20),
        garbage in any::<u8>(),
    ) {
        let mut pm = crashed_pool();
        let log_start = pm.layout().log_start().0;
        let log_lines = pm.layout().log_lines;
        for off in &offsets {
            let line = LineAddr(log_start + off % log_lines);
            pm.write_line(line, CacheLine::filled(garbage)).unwrap();
        }
        pm.drain();
        // Must not panic, whatever the corruption did.
        let report = recover(&mut pm).unwrap();
        prop_assert!(report.scanned <= log_lines as usize / 2);
        // The pool must remain openable end-to-end.
        let pool = PaxPool::open(pm, config()).unwrap();
        let _ = pool.vpm().read_u64(0).unwrap();
    }

    /// Corrupting entries that belong to *committed* epochs can never
    /// change recovery's outcome: the recovered data still matches the
    /// last snapshot exactly.
    #[test]
    fn stale_entry_corruption_is_harmless(
        offsets in proptest::collection::vec(0u64..1_000, 1..20),
    ) {
        // Crash with NO epoch-2 entries durable: arrange by crashing
        // immediately after persist (all durable entries are epoch-1 =
        // committed = stale).
        let pool = PaxPool::create(config()).unwrap();
        let vpm = pool.vpm();
        for i in 0..32u64 {
            vpm.write_u64(i * 64, 7).unwrap();
        }
        pool.persist().unwrap();
        let mut pm = pool.crash().unwrap();

        let log_start = pm.layout().log_start().0;
        let log_lines = pm.layout().log_lines;
        for off in &offsets {
            let line = LineAddr(log_start + off % log_lines);
            pm.write_line(line, CacheLine::filled(0x5C)).unwrap();
        }
        pm.drain();

        let pool = PaxPool::open(pm, config()).unwrap();
        let vpm = pool.vpm();
        for i in 0..32u64 {
            prop_assert_eq!(vpm.read_u64(i * 64).unwrap(), 7);
        }
    }
}

#[test]
fn truncated_pool_file_is_rejected_cleanly() {
    let dir = std::env::temp_dir().join("pax-robustness");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("truncated.pool");

    let pool = PaxPool::create(config()).unwrap();
    pool.vpm().write_u64(0, 1).unwrap();
    pool.persist().unwrap();
    pool.save_file(&path).unwrap();

    let full = std::fs::read(&path).unwrap();
    for keep in [0usize, 3, 8, 35, full.len() / 2] {
        std::fs::write(&path, &full[..keep]).unwrap();
        let err = PmPool::load(&path).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("pool") || msg.contains("I/O"), "keep={keep}: unexpected error {msg}");
    }
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn bitflip_in_header_magic_is_detected() {
    let dir = std::env::temp_dir().join("pax-robustness");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("bitflip.pool");

    let pool = PaxPool::create(config()).unwrap();
    pool.save_file(&path).unwrap();
    let mut bytes = std::fs::read(&path).unwrap();
    bytes[0] ^= 0x01;
    std::fs::write(&path, &bytes).unwrap();
    assert!(PmPool::load(&path).is_err());
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn double_recovery_after_corruption_is_stable() {
    let mut pm = crashed_pool();
    // Corrupt one mid-log line.
    let line = LineAddr(pm.layout().log_start().0 + 5);
    pm.write_line(line, CacheLine::filled(0xEE)).unwrap();
    pm.drain();
    let r1 = recover(&mut pm).unwrap();
    let r2 = recover(&mut pm).unwrap();
    assert_eq!(r1.committed_epoch, r2.committed_epoch);
    // Whatever survived the first scan survives the second identically.
    let s1 = UndoLog::scan(&mut pm).unwrap();
    let s2 = UndoLog::scan(&mut pm).unwrap();
    assert_eq!(s1, s2);
}
