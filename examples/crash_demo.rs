//! Crash anatomy: what each mechanism leaves behind when power fails at
//! the worst possible moment (the §2 motivating scenario).
//!
//! ```text
//! cargo run --example crash_demo
//! ```
//!
//! A "put" into a hash table mutates several locations: the node
//! allocation, the key/value bytes, the bucket pointer, and the element
//! count. This demo interrupts that multi-location operation under
//! (a) direct PM, (b) PMDK-style WAL, and (c) PAX — then prints what a
//! restarted process observes.

use libpax::{Heap, MemSpace, PHashMap, PaxConfig, PaxPool};
use pax_baselines::{Costed, WalSpace};
use pax_pm::PoolConfig;

fn pool_config() -> PoolConfig {
    PoolConfig::small().with_data_bytes(8 << 20).with_log_bytes(32 << 20)
}

fn main() -> libpax::Result<()> {
    println!("== (a) direct PM: the tear is permanent ==");
    {
        // Hand-rolled 3-field record so the tear is visible byte-by-byte.
        let direct = pax_baselines::DirectPmSpace::new(1 << 20);
        direct.write_u64(0, 0xAAAA)?; // field 1: value
        direct.write_u64(64, 0xBBBB)?; // field 2: index pointer
                                       // power fails before field 3 (the "record valid" flag)
        direct.crash();
        println!(
            "  after reboot: value={:#x} index={:#x} valid={:#x}  ← inconsistent forever",
            direct.read_u64(0)?,
            direct.read_u64(64)?,
            direct.read_u64(128)?
        );
    }

    println!("== (b) PMDK-style WAL: safe, but every store stalled ==");
    {
        let wal = WalSpace::create(pool_config())?;
        let map: PHashMap<u64, u64, _, Heap<_>> = PHashMap::attach(Heap::attach(wal.clone())?)?;
        wal.tx(|| map.insert(1, 100).map(|_| ()))?;
        // Crash mid-transaction:
        wal.begin_tx()?;
        map.insert(2, 200)?;
        let stalls = wal.costs().sfences;
        let pm = wal.crash()?;
        let wal = WalSpace::open(pm)?;
        let map: PHashMap<u64, u64, _, Heap<_>> = PHashMap::attach(Heap::attach(wal)?)?;
        println!(
            "  after reboot: key1={:?} key2={:?}; cost: {stalls} SFENCE stalls this session",
            map.get(1)?,
            map.get(2)?,
        );
    }

    println!("== (c) PAX: safe, zero stalls, device does the logging ==");
    {
        let config = PaxConfig::default().with_pool(pool_config());
        let pool = PaxPool::create(config)?;
        let map: PHashMap<u64, u64, _, Heap<_>> = PHashMap::attach(Heap::attach(pool.vpm())?)?;
        map.insert(1, 100)?;
        pool.persist()?;
        map.insert(2, 200)?; // epoch 2, in flight

        // Cut power inside the *persist* of epoch 2, the nastiest point:
        let clock = pool.crash_clock()?;
        clock.arm(clock.steps_taken() + 3);
        let err = pool.persist().unwrap_err();
        println!("  persist interrupted: {err}");

        let metrics_stalls = {
            let m = pool.device_metrics();
            m.map(|m| m.forced_log_flushes).unwrap_or(0)
        };
        let pm = pool.crash()?;
        let pool = PaxPool::open(pm, PaxConfig::default().with_pool(pool_config()))?;
        let report = pool.recovery_report()?;
        let map: PHashMap<u64, u64, _, Heap<_>> = PHashMap::attach(Heap::attach(pool.vpm())?)?;
        println!(
            "  after reboot: key1={:?} key2={:?}; rolled back {} lines; op-path stalls: {}",
            map.get(1)?,
            map.get(2)?,
            report.rolled_back,
            metrics_stalls
        );
        assert_eq!(map.get(1)?, Some(100));
        assert_eq!(map.get(2)?, None);
    }

    println!("done: only (a) is inconsistent; only (c) paid no synchronous overhead.");
    Ok(())
}
