//! An ordered time-series index with pipelined (non-blocking) commits.
//!
//! ```text
//! cargo run --example sorted_index
//! ```
//!
//! Combines the two extensions this reproduction adds on top of the
//! paper's core: the ordered `PBTreeMap` (range scans over persistent
//! data) and §6's non-blocking `persist_async()` — each batch's commit
//! drains while the next batch is being ingested, so the ingest loop
//! never stalls on persistence.

use libpax::{Heap, PBTreeMap, PaxConfig, PaxPool};
use pax_pm::PoolConfig;

fn config() -> PaxConfig {
    PaxConfig::default()
        .with_pool(PoolConfig::small().with_data_bytes(32 << 20).with_log_bytes(256 << 20))
}

fn main() -> libpax::Result<()> {
    let pool = PaxPool::create(config())?;
    let index: PBTreeMap<u64, u64, _, Heap<_>> = PBTreeMap::attach(Heap::attach(pool.vpm())?)?;

    // Pipelined ingest: persist_async the previous batch while writing
    // the next one.
    let batches = 8u64;
    let per_batch = 250u64;
    let mut committed = 0u64;
    for b in 0..batches {
        for i in 0..per_batch {
            let timestamp = b * 10_000 + i * 7; // sparse, ordered-ish keys
            index.insert(timestamp, b)?;
        }
        // Kick off the commit of everything so far and keep going; the
        // previous epoch (if still draining) is completed in order.
        let epoch = pool.persist_async()?;
        println!("batch {b}: epoch {epoch} draining in the background");
        while let Some(done) = pool.persist_poll()? {
            committed = committed.max(done);
        }
    }
    pool.persist_wait()?;
    println!("all epochs committed (last committed before wait: {committed})");

    // Range queries over the persistent index.
    let window = index.range(30_000, 30_100)?;
    println!("events in [30000, 30100]: {:?}", window);
    index.check_invariants()?;

    // Crash and prove the whole pipeline landed durably.
    let pm = pool.crash()?;
    println!("-- power failure --");
    let pool = PaxPool::open(pm, config())?;
    let index: PBTreeMap<u64, u64, _, Heap<_>> = PBTreeMap::attach(Heap::attach(pool.vpm())?)?;
    index.check_invariants()?;
    println!(
        "recovered {} events; first {:?}, last {:?}",
        index.len()?,
        index.first()?,
        index.last()?
    );
    assert_eq!(index.len()?, batches * per_batch);
    let window = index.range(30_000, 30_100)?;
    assert_eq!(window.len(), 15); // timestamps 30000, 30007, …, 30098
    println!("range scan after recovery matches: {} events", window.len());
    Ok(())
}
