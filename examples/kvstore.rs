//! A durable key-value store over a pool file — the paper's motivating
//! application class (§1: "applications can interact with vast amounts of
//! data in granular patterns" without kernel crossings or serialization).
//!
//! ```text
//! cargo run --example kvstore
//! ```
//!
//! Runs three "sessions" against the same pool file: populate, update,
//! and audit. Between sessions the pool is saved to disk and fully
//! reopened — the persistent structure carries over with no
//! serialization/deserialization step, only `map_pool`.

use libpax::{HwSnapshotter, PHashMap, PVec, PaxConfig, PaxPool, Persistent, VPm};
use pax_alloc::BitmapAlloc;
use pax_pm::PoolConfig;

/// Fixed-size keys: a 16-byte user id.
type UserId = [u8; 16];

fn user(n: u64) -> UserId {
    let mut id = [b'.'; 16];
    id[..5].copy_from_slice(b"user-");
    id[5..13].copy_from_slice(&n.to_le_bytes());
    id
}

fn config() -> PaxConfig {
    PaxConfig::default()
        .with_pool(PoolConfig::small().with_data_bytes(16 << 20).with_log_bytes(64 << 20))
}

fn main() -> libpax::Result<()> {
    let dir = std::env::temp_dir().join("pax-kvstore");
    std::fs::create_dir_all(&dir).map_err(pax_pm::PmError::from)?;
    let path = dir.join("accounts.pool");
    let _ = std::fs::remove_file(&path);

    // ---- Session 1: create accounts. ----
    {
        let snap = HwSnapshotter::map_pool(&path, config())?;
        let balances: Persistent<PHashMap<UserId, u64>> = Persistent::new(&snap)?;
        for n in 0..1_000 {
            balances.insert(user(n), 100)?;
        }
        snap.persist()?;
        snap.pool().save_file(&path)?;
        println!("session 1: created {} accounts", balances.len()?);
    }

    // ---- Session 2: transfers, with a crash mid-session. ----
    {
        let snap = HwSnapshotter::map_pool(&path, config())?;
        let balances: Persistent<PHashMap<UserId, u64>> = Persistent::new(&snap)?;

        // A batch of transfers, committed as one epoch.
        for n in 0..500u64 {
            let from = balances.get(user(n))?.expect("exists");
            let to = balances.get(user(n + 500))?.expect("exists");
            balances.insert(user(n), from - 10)?;
            balances.insert(user(n + 500), to + 10)?;
        }
        snap.persist()?;
        println!("session 2: committed 500 transfers");

        // A second batch that DIES half-way through a transfer: the money
        // has left one account but not arrived in the other.
        let from = balances.get(user(0))?.expect("exists");
        balances.insert(user(0), from - 50)?; // debit…
                                              // -- crash before credit --
        let pm = snap.pool().crash()?;
        println!("session 2: power failed mid-transfer!");
        let mut pm = pm;
        pm.save(&path)?;
    }

    // ---- Session 3: audit after recovery. ----
    {
        let snap = HwSnapshotter::map_pool(&path, config())?;
        let balances: Persistent<PHashMap<UserId, u64>> = Persistent::new(&snap)?;
        let total: u64 = balances.entries()?.iter().map(|(_, v)| *v).sum();
        println!(
            "session 3: {} accounts, total balance {total} (expected {})",
            balances.len()?,
            1_000 * 100
        );
        assert_eq!(total, 100_000, "no money created or destroyed by the crash");
        assert_eq!(balances.get(user(0))?, Some(90), "half-transfer rolled back");

        // Keep an audit trail in a second structure type, same pool API.
        let audit_pool = HwSnapshotter::create(config())?;
        let log: Persistent<PVec<u64>> = Persistent::new(&audit_pool)?;
        log.push(total)?;
        audit_pool.persist()?;
        println!("audit recorded; invariant held.");
    }

    // ---- Session 4: the same store over the scalable allocator. ----
    // The structures are allocator-generic: the identical PHashMap code
    // runs over pax-alloc's llfree-style bitmap allocator, whose
    // metadata lives inside the pool's vPM so undo logging covers it
    // (§3.4). `attach` doubles as recovery: it scans the bitmap and
    // rebuilds the volatile per-core index.
    {
        let pool = PaxPool::create(config())?;
        let alloc = BitmapAlloc::attach(pool.vpm())?;
        let balances: Persistent<PHashMap<UserId, u64, VPm, BitmapAlloc<VPm>>> =
            Persistent::new_in(alloc.clone())?;
        for n in 0..1_000 {
            balances.insert(user(n), 100)?;
        }
        pool.persist()?;
        let snap = alloc.metrics_snapshot();
        println!("session 4 (pax-alloc): {} accounts over the bitmap allocator", balances.len()?);
        println!(
            "  telemetry: {} live frames, {} fast hits, {} tree steals, \
             {} frames scanned, fragmentation {}‰",
            alloc.live_frames(),
            snap.counter("alloc_fast_hits"),
            snap.counter("alloc_tree_steals"),
            snap.counter("alloc_scan_frames"),
            alloc.fragmentation_permille(),
        );
        println!(
            "  attach-time recovery scan covered {} frames",
            alloc.recovery_stats().scan_steps
        );
    }

    std::fs::remove_file(&path).map_err(pax_pm::PmError::from)?;
    Ok(())
}
