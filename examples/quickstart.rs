//! Quickstart: the paper's Listing 1, runnable.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! Maps a pool, wraps it in an allocator, attaches an *unmodified*
//! volatile-style hash map, mutates it with plain inserts, and asks the
//! PAX device for a crash-consistent snapshot — then simulates a power
//! failure and shows the snapshot surviving.

use libpax::{HwSnapshotter, PHashMap, PaxConfig, PaxPool, Persistent};

fn main() -> libpax::Result<()> {
    // Listing 1, line 1: map a pool and wrap it in an allocator object.
    let allocator = HwSnapshotter::create(PaxConfig::default())?;

    // Line 2: pass the allocator to a standard structure constructor.
    let persistent_ht: Persistent<PHashMap<u64, u64>> = Persistent::new(&allocator)?;

    // Lines 3–5: ordinary loads and stores; the device interposes below.
    persistent_ht.insert(1, 100)?;
    println!("Key 1 = {}", persistent_ht.get(1)?.expect("just inserted"));
    persistent_ht.insert(2, 200)?;

    // Line 6: group-commit the epoch.
    let epoch = allocator.persist()?;
    println!("persisted epoch {epoch}");

    // Beyond Listing 1: mutate again WITHOUT persisting, then lose power.
    persistent_ht.insert(3, 300)?;
    persistent_ht.remove(1)?;
    println!(
        "pre-crash (unpersisted): key 3 = {:?}, key 1 = {:?}",
        persistent_ht.get(3)?,
        persistent_ht.get(1)?
    );

    let pm = allocator.pool().crash()?;
    println!("-- power failure --");

    // Reopen: §3.4 recovery happens inside; same call as construction.
    let pool = PaxPool::open(pm, PaxConfig::default())?;
    let report = pool.recovery_report()?;
    println!(
        "recovered to epoch {} (rolled back {} undo entries)",
        report.committed_epoch, report.rolled_back
    );
    let snap = HwSnapshotter::from_pool(pool);
    let ht: Persistent<PHashMap<u64, u64>> = Persistent::new(&snap)?;
    println!("post-crash: key 1 = {:?} (restored)", ht.get(1)?);
    println!("post-crash: key 2 = {:?} (persisted)", ht.get(2)?);
    println!("post-crash: key 3 = {:?} (never persisted — gone)", ht.get(3)?);

    assert_eq!(ht.get(1)?, Some(100));
    assert_eq!(ht.get(2)?, Some(200));
    assert_eq!(ht.get(3)?, None);
    println!("snapshot semantics held.");
    Ok(())
}
