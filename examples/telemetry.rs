//! A telemetry ingestion pipeline: group commit in practice (§3.2).
//!
//! ```text
//! cargo run --example telemetry
//! ```
//!
//! Sensors produce readings continuously; the store batches them and
//! calls `persist()` periodically — "the application issues persist()
//! after a batch of operations, which works as a form of group commit".
//! The demo sweeps the batch size, reports the device-side cost per
//! reading, then crashes mid-batch and shows the recovery point landing
//! exactly on the last batch boundary.

use libpax::{Heap, PHashMap, PVec, PaxConfig, PaxPool};
use pax_pm::PoolConfig;

/// One reading: sensor id, timestamp tick, value — 3×u64 packed.
fn encode(sensor: u64, tick: u64, value: u64) -> u128 {
    ((sensor as u128) << 96) | ((tick as u128 & 0xffff_ffff) << 64) | value as u128
}

fn config() -> PaxConfig {
    PaxConfig::default()
        .with_pool(PoolConfig::small().with_data_bytes(32 << 20).with_log_bytes(128 << 20))
}

fn main() -> libpax::Result<()> {
    println!("batch-size sweep: device cost per ingested reading\n");
    println!("  batch   persists   snoops/reading   log bytes/reading");
    for batch in [10u64, 100, 1000] {
        let pool = PaxPool::create(config())?;
        let readings: PVec<u128, _, Heap<_>> = PVec::attach(Heap::attach(pool.vpm())?)?;
        let total = 3_000u64;
        for t in 0..total {
            readings.push(encode(t % 16, t, t * 7))?;
            if (t + 1) % batch == 0 {
                pool.persist()?;
            }
        }
        let m = pool.device_metrics()?;
        println!(
            "  {batch:>5}   {:>8}   {:>14.3}   {:>17.1}",
            m.persists,
            m.snoops_sent as f64 / total as f64,
            m.log_bytes() as f64 / total as f64
        );
    }

    println!("\ncrash mid-batch: recovery lands on the last batch boundary\n");
    let pool = PaxPool::create(config())?;
    let readings: PVec<u128, _, Heap<_>> = PVec::attach(Heap::attach(pool.vpm())?)?;
    let batch = 100u64;
    let mut persisted_upto = 0u64;
    for t in 0..1_234u64 {
        readings.push(encode(t % 16, t, t))?;
        if (t + 1) % batch == 0 {
            pool.persist()?;
            persisted_upto = t + 1;
        }
    }
    println!("  ingested 1234 readings, persisted through {persisted_upto}");
    let pm = pool.crash()?;
    println!("  -- power failure --");

    let pool = PaxPool::open(pm, config())?;
    let readings: PVec<u128, _, Heap<_>> = PVec::attach(Heap::attach(pool.vpm())?)?;
    let recovered = readings.len()?;
    println!("  recovered {recovered} readings (exactly the last persist boundary)");
    assert_eq!(recovered, persisted_upto);

    // Downstream index: rebuilt from recovered data — two structures,
    // one pool API.
    let index_pool = PaxPool::create(config())?;
    let latest: PHashMap<u64, u64, _, Heap<_>> = PHashMap::attach(Heap::attach(index_pool.vpm())?)?;
    for i in 0..recovered {
        let r = readings.get(i)?.expect("in range");
        let sensor = (r >> 96) as u64;
        let value = r as u64;
        latest.insert(sensor, value)?;
    }
    index_pool.persist()?;
    println!("  rebuilt per-sensor index over {} sensors", latest.len()?);
    Ok(())
}
